//! Machine descriptors for the five Arm chips of the paper's Table IV, plus
//! the idealized machine of the Figure 3 walkthrough.
//!
//! Each [`ChipSpec`] carries the hardware half of the paper's Table III
//! performance-model parameters — instruction latencies (`L_*`), reciprocal
//! throughputs (the paper's `IPC_*` multipliers), the SIMD lane count
//! `σ_lane`, and the empirical arithmetic-intensity threshold `σ_AI` — plus
//! the cache hierarchy, memory bandwidth and NUMA topology needed by the
//! multi-core simulator (§V-E).
//!
//! The numeric values are calibrated so that the *relative* behaviours the
//! paper reports emerge from the model: KP920's small out-of-order window
//! makes rotating register allocation worth ~3% while Graviton2 and M2 see
//! no benefit (§V-B); KP920's expensive L2 produces the K=256 efficiency dip
//! in Fig 6; Graviton2's σ_AI is below M2's, which is below KP920's
//! (Fig 7, the 26×64 case); and the A64FX's four-CMG ccNUMA ring limits its
//! strong scaling (Fig 11).

use crate::simd::SimdIsa;
use serde::{Deserialize, Serialize};

/// One level of a chip's data-cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevelSpec {
    /// Capacity in bytes (per core for private levels, total for shared).
    pub size_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Load-to-use latency in cycles for a hit at this level.
    pub latency_cycles: u64,
    /// Whether the level is shared between cores (affects the multi-core
    /// contention model, not single-kernel timing).
    pub shared: bool,
}

/// NUMA / core-group topology, used by the strong-scaling model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NumaTopology {
    /// Number of NUMA domains (CMGs on the A64FX, sockets on Altra).
    pub domains: usize,
    /// Cores per domain.
    pub cores_per_domain: usize,
    /// Multiplicative slowdown applied to memory traffic that crosses
    /// domains (1.0 = uniform memory).
    pub cross_domain_penalty: f64,
    /// Memory bandwidth available *per domain* in GB/s.
    pub bw_per_domain_gbs: f64,
    /// Capacity of the inter-domain interconnect (ring bus on the A64FX,
    /// socket link on the Altra) in GB/s; cross-domain traffic shares it.
    /// Irrelevant for single-domain chips.
    pub interconnect_bw_gbs: f64,
}

impl NumaTopology {
    /// Uniform-memory topology: one domain holding all cores.
    pub fn uniform(cores: usize, bw_gbs: f64) -> Self {
        NumaTopology {
            domains: 1,
            cores_per_domain: cores,
            cross_domain_penalty: 1.0,
            bw_per_domain_gbs: bw_gbs,
            interconnect_bw_gbs: f64::INFINITY,
        }
    }

    /// Total machine bandwidth in GB/s.
    pub fn total_bw_gbs(&self) -> f64 {
        self.bw_per_domain_gbs * self.domains as f64
    }
}

/// A complete machine descriptor (one column of Table IV + the hardware rows
/// of Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Marketing name, e.g. `"Huawei KP920"`.
    pub name: &'static str,
    /// Short identifier used in tables and filenames, e.g. `"kp920"`.
    pub id: &'static str,
    /// Cores available to the benchmark (Table IV `Cores`).
    pub cores: usize,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// SIMD instruction set (`σ_lane` is derived from this).
    pub simd: SimdIsa,
    /// FMA result latency in cycles (`L_fma`).
    pub lat_fma: u64,
    /// Store completion latency in cycles (`L_store`).
    pub lat_store: u64,
    /// Reciprocal throughput of FMA issue in cycles (`IPC_fma` in the
    /// paper's notation: cycles consumed per instruction).
    pub rt_fma: u64,
    /// Reciprocal throughput of load issue in cycles (`IPC_load`).
    pub rt_load: u64,
    /// Reciprocal throughput of store issue in cycles (`IPC_store`).
    pub rt_store: u64,
    /// Out-of-order scheduling window, in instructions. Larger windows hide
    /// load latency without software pipelining; ~1 is fully in-order.
    pub ooo_window: usize,
    /// Whether write-after-read hazards on vector registers stall the
    /// pipeline (no register renaming of the streaming banks). True for the
    /// chips whose measured kernels benefit from rotating register
    /// allocation (§III-C1 / §V-B): the KP920 and the A64FX — and for the
    /// idealized Fig 3 machine, whose analytic model assumes exactly this.
    pub war_hazard: bool,
    /// Empirical threshold arithmetic intensity `σ_AI` (flop per element
    /// moved, the units of Table II): micro-kernels with `AI >= σ_AI` can
    /// reach close-to-peak on this chip.
    pub sigma_ai: f64,
    /// Fixed cost in cycles of launching one micro-kernel (`T_launch`);
    /// eliminated by epilogue/prologue fusion (§III-C2).
    pub launch_cycles: u64,
    /// Data-cache hierarchy ordered L1 → last level. Load latency for a hit
    /// in level `i` is `caches[i].latency_cycles`; a miss in the last level
    /// costs `dram_latency_cycles`.
    pub caches: Vec<CacheLevelSpec>,
    /// DRAM access latency in cycles.
    pub dram_latency_cycles: u64,
    /// NUMA topology and memory bandwidth.
    pub numa: NumaTopology,
}

impl ChipSpec {
    /// `σ_lane`: single-precision lanes per vector register.
    pub fn sigma_lane(&self) -> usize {
        self.simd.lanes()
    }

    /// Peak single-precision GFLOP/s of one core under this model:
    /// `2 · σ_lane / rt_fma` flops per cycle.
    pub fn peak_gflops_core(&self) -> f64 {
        2.0 * self.sigma_lane() as f64 / self.rt_fma as f64 * self.freq_ghz
    }

    /// Peak single-precision GFLOP/s of the whole chip.
    pub fn peak_gflops(&self) -> f64 {
        self.peak_gflops_core() * self.cores as f64
    }

    /// L1 data cache load-to-use latency (`L_load` for L1-resident data).
    pub fn lat_load_l1(&self) -> u64 {
        self.caches.first().map(|c| c.latency_cycles).unwrap_or(self.dram_latency_cycles)
    }

    /// Capacity of the L1 data cache in bytes.
    pub fn l1d_bytes(&self) -> usize {
        self.caches.first().map(|c| c.size_bytes).unwrap_or(0)
    }

    /// Huawei Kunpeng 920 (8 cores @ 2.6 GHz, NEON).
    ///
    /// High `σ_AI`, small OoO window (rotating register allocation helps),
    /// and an expensive L2 (the Fig 6 K=256 dip).
    pub fn kp920() -> Self {
        ChipSpec {
            name: "Huawei KP920",
            id: "kp920",
            cores: 8,
            freq_ghz: 2.6,
            simd: SimdIsa::Neon,
            lat_fma: 4,
            lat_store: 3,
            rt_fma: 1,
            rt_load: 1,
            rt_store: 1,
            ooo_window: 64,
            war_hazard: true,
            sigma_ai: 6.7,
            launch_cycles: 24,
            caches: vec![
                CacheLevelSpec {
                    size_bytes: 64 << 10,
                    line_bytes: 64,
                    latency_cycles: 3,
                    shared: false,
                },
                CacheLevelSpec {
                    size_bytes: 512 << 10,
                    line_bytes: 64,
                    latency_cycles: 22,
                    shared: false,
                },
                CacheLevelSpec {
                    size_bytes: 32 << 20,
                    line_bytes: 64,
                    latency_cycles: 48,
                    shared: true,
                },
            ],
            dram_latency_cycles: 220,
            numa: NumaTopology::uniform(8, 85.0),
        }
    }

    /// AWS Graviton2 (16 cores @ 2.5 GHz, NEON, Neoverse N1).
    ///
    /// Low `σ_AI` and a generous OoO window: rotating register allocation
    /// brings no additional benefit (§V-B).
    pub fn graviton2() -> Self {
        ChipSpec {
            name: "AWS Graviton2",
            id: "graviton2",
            cores: 16,
            freq_ghz: 2.5,
            simd: SimdIsa::Neon,
            lat_fma: 6,
            lat_store: 4,
            rt_fma: 1,
            rt_load: 1,
            rt_store: 1,
            ooo_window: 160,
            war_hazard: false,
            sigma_ai: 4.8,
            launch_cycles: 20,
            caches: vec![
                CacheLevelSpec {
                    size_bytes: 64 << 10,
                    line_bytes: 64,
                    latency_cycles: 4,
                    shared: false,
                },
                CacheLevelSpec {
                    size_bytes: 1 << 20,
                    line_bytes: 64,
                    latency_cycles: 11,
                    shared: false,
                },
                CacheLevelSpec {
                    size_bytes: 32 << 20,
                    line_bytes: 64,
                    latency_cycles: 32,
                    shared: true,
                },
            ],
            dram_latency_cycles: 200,
            numa: NumaTopology::uniform(16, 120.0),
        }
    }

    /// Ampere Altra (70 cores @ 3.0 GHz, NEON, two NUMA nodes).
    pub fn altra() -> Self {
        ChipSpec {
            name: "Ampere Altra",
            id: "altra",
            cores: 70,
            freq_ghz: 3.0,
            simd: SimdIsa::Neon,
            lat_fma: 6,
            lat_store: 4,
            rt_fma: 1,
            rt_load: 1,
            rt_store: 1,
            ooo_window: 128,
            war_hazard: false,
            sigma_ai: 5.5,
            launch_cycles: 20,
            caches: vec![
                CacheLevelSpec {
                    size_bytes: 64 << 10,
                    line_bytes: 64,
                    latency_cycles: 4,
                    shared: false,
                },
                CacheLevelSpec {
                    size_bytes: 1 << 20,
                    line_bytes: 64,
                    latency_cycles: 13,
                    shared: false,
                },
                CacheLevelSpec {
                    size_bytes: 32 << 20,
                    line_bytes: 64,
                    latency_cycles: 38,
                    shared: true,
                },
            ],
            dram_latency_cycles: 230,
            numa: NumaTopology {
                domains: 2,
                cores_per_domain: 35,
                cross_domain_penalty: 1.5,
                bw_per_domain_gbs: 100.0,
                interconnect_bw_gbs: 115.0,
            },
        }
    }

    /// Apple M2 performance cluster (4 P-cores @ 3.49 GHz, NEON).
    ///
    /// Very large OoO window and 128 KiB L1d; no L3 (big shared L2).
    pub fn m2() -> Self {
        ChipSpec {
            name: "Apple M2",
            id: "m2",
            cores: 4,
            freq_ghz: 3.49,
            simd: SimdIsa::Neon,
            lat_fma: 5,
            lat_store: 3,
            rt_fma: 1,
            rt_load: 1,
            rt_store: 1,
            ooo_window: 320,
            war_hazard: false,
            sigma_ai: 5.2,
            launch_cycles: 16,
            caches: vec![
                CacheLevelSpec {
                    size_bytes: 128 << 10,
                    line_bytes: 128,
                    latency_cycles: 3,
                    shared: false,
                },
                CacheLevelSpec {
                    size_bytes: 16 << 20,
                    line_bytes: 128,
                    latency_cycles: 16,
                    shared: true,
                },
            ],
            dram_latency_cycles: 180,
            numa: NumaTopology::uniform(4, 100.0),
        }
    }

    /// Fujitsu A64FX (48 compute cores @ 2.2 GHz, 512-bit SVE, 4 CMGs).
    ///
    /// `σ_lane = 16`; ccNUMA ring between the four Core Memory Groups with a
    /// heavy cross-CMG penalty — the source of the poor strong scaling the
    /// paper reports (30.3% parallel efficiency, Fig 11).
    pub fn a64fx() -> Self {
        ChipSpec {
            name: "Fujitsu A64FX",
            id: "a64fx",
            cores: 48,
            freq_ghz: 2.2,
            simd: SimdIsa::Sve512,
            lat_fma: 9,
            lat_store: 6,
            rt_fma: 1,
            rt_load: 1,
            rt_store: 1,
            ooo_window: 96,
            war_hazard: true,
            sigma_ai: 6.0,
            launch_cycles: 28,
            caches: vec![
                CacheLevelSpec {
                    size_bytes: 64 << 10,
                    line_bytes: 256,
                    latency_cycles: 5,
                    shared: false,
                },
                CacheLevelSpec {
                    size_bytes: 8 << 20,
                    line_bytes: 256,
                    latency_cycles: 40,
                    shared: true,
                },
            ],
            dram_latency_cycles: 260,
            numa: NumaTopology {
                domains: 4,
                cores_per_domain: 12,
                cross_domain_penalty: 3.0,
                bw_per_domain_gbs: 256.0,
                // The CMG ring: the paper attributes autoGEMM's poor A64FX
                // scaling (30.3% parallel efficiency) to it.
                interconnect_bw_gbs: 62.0,
            },
        }
    }

    /// The idealized machine of the paper's Figure 3 walkthrough:
    /// `L_load = L_store = L_fma = 8`, all reciprocal throughputs 1, NEON
    /// lanes, all data L1-resident.
    pub fn idealized() -> Self {
        ChipSpec {
            name: "Idealized (Fig. 3)",
            id: "ideal",
            cores: 1,
            freq_ghz: 1.0,
            simd: SimdIsa::Neon,
            lat_fma: 8,
            lat_store: 8,
            rt_fma: 1,
            rt_load: 1,
            rt_store: 1,
            ooo_window: 64,
            war_hazard: true,
            sigma_ai: 6.0,
            launch_cycles: 0,
            caches: vec![CacheLevelSpec {
                size_bytes: 16 << 20,
                line_bytes: 64,
                latency_cycles: 8,
                shared: false,
            }],
            dram_latency_cycles: 8,
            numa: NumaTopology::uniform(1, 1.0e9),
        }
    }

    /// The five evaluation chips of Table IV, in the paper's column order.
    pub fn all_evaluated() -> Vec<ChipSpec> {
        vec![
            ChipSpec::kp920(),
            ChipSpec::graviton2(),
            ChipSpec::altra(),
            ChipSpec::m2(),
            ChipSpec::a64fx(),
        ]
    }

    /// Look a chip up by its short `id`.
    pub fn by_id(id: &str) -> Option<ChipSpec> {
        Self::all_evaluated()
            .into_iter()
            .chain(std::iter::once(ChipSpec::idealized()))
            .find(|c| c.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_chips_match_table_iv_headline_numbers() {
        let chips = ChipSpec::all_evaluated();
        assert_eq!(chips.len(), 5);
        let kp = &chips[0];
        assert_eq!((kp.cores, kp.freq_ghz), (8, 2.6));
        assert_eq!(kp.l1d_bytes(), 64 << 10);
        let a64 = &chips[4];
        assert_eq!(a64.sigma_lane(), 16);
        assert_eq!(a64.numa.domains, 4);
        assert_eq!(a64.numa.cores_per_domain, 12);
    }

    #[test]
    fn sigma_ai_ordering_matches_fig7_analysis() {
        // Fig 7's 26x64 case requires σ_AI(Graviton2) < σ_AI(M2) < σ_AI(KP920),
        // with the 4x16 tile (AI 6.4) achieving peak on the low-σ chips only
        // and 5x16 (AI 7.62) achieving peak everywhere.
        let kp = ChipSpec::kp920().sigma_ai;
        let gr = ChipSpec::graviton2().sigma_ai;
        let m2 = ChipSpec::m2().sigma_ai;
        assert!(gr < m2 && m2 < kp);
        assert!(6.4 < kp && kp <= 7.62);
        assert!(gr <= 6.4 && m2 <= 6.4);
    }

    #[test]
    fn peak_gflops_follows_lane_count_and_frequency() {
        let kp = ChipSpec::kp920();
        assert!((kp.peak_gflops_core() - 2.0 * 4.0 * 2.6).abs() < 1e-9);
        let a64 = ChipSpec::a64fx();
        assert!((a64.peak_gflops_core() - 2.0 * 16.0 * 2.2).abs() < 1e-9);
        assert!(a64.peak_gflops() > kp.peak_gflops());
    }

    #[test]
    fn idealized_chip_matches_fig3_assumptions() {
        let c = ChipSpec::idealized();
        assert_eq!(c.lat_fma, 8);
        assert_eq!(c.lat_load_l1(), 8);
        assert_eq!(c.lat_store, 8);
        assert_eq!((c.rt_fma, c.rt_load, c.rt_store), (1, 1, 1));
        assert_eq!(c.launch_cycles, 0);
    }

    #[test]
    fn rotating_register_candidates_have_small_windows() {
        // §V-B: the rotation optimization only pays off on KP920's small
        // window; Graviton2 and M2 hide the latency in hardware.
        assert!(ChipSpec::kp920().ooo_window < ChipSpec::graviton2().ooo_window);
        assert!(ChipSpec::kp920().ooo_window < ChipSpec::m2().ooo_window);
    }

    #[test]
    fn by_id_round_trips() {
        for chip in ChipSpec::all_evaluated() {
            assert_eq!(ChipSpec::by_id(chip.id).unwrap().name, chip.name);
        }
        assert!(ChipSpec::by_id("ideal").is_some());
        assert!(ChipSpec::by_id("x86").is_none());
    }

    #[test]
    fn numa_total_bandwidth_accumulates_domains() {
        let a64 = ChipSpec::a64fx();
        assert!((a64.numa.total_bw_gbs() - 1024.0).abs() < 1e-9);
        let kp = ChipSpec::kp920();
        assert!((kp.numa.total_bw_gbs() - 85.0).abs() < 1e-9);
    }
}
