//! Structured micro-kernel programs: straight-line blocks and counted loops.
//!
//! The generated micro-kernels of Listing 1 have exactly one loop (the `kc`
//! main loop, `subs x29 / bne 1b`). We represent that loop structurally so
//! the simulator can either unroll it or account for it analytically; the
//! rendered assembly still prints the label/branch form.

use crate::isa::{Instr, InstrClass};
use serde::{Deserialize, Serialize};

/// A block of a micro-kernel program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Block {
    /// Straight-line code.
    Straight(Vec<Instr>),
    /// A counted loop executed `count` times. Loop-control overhead
    /// (`subs`/`bne`) is modelled as `ctrl_overhead` scalar instructions per
    /// iteration by the simulator.
    Loop { count: usize, body: Vec<Instr> },
}

impl Block {
    /// Number of dynamic instructions this block executes (loop-control not
    /// included).
    pub fn dynamic_len(&self) -> usize {
        match self {
            Block::Straight(v) => v.len(),
            Block::Loop { count, body } => count * body.len(),
        }
    }
}

/// A complete micro-kernel program plus metadata describing its shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable name, e.g. `micro_kernel_5x16_kc64`.
    pub name: String,
    pub blocks: Vec<Block>,
}

impl Program {
    pub fn new(name: impl Into<String>) -> Self {
        Program { name: name.into(), blocks: Vec::new() }
    }

    /// Append a straight-line block (empty blocks are dropped).
    pub fn push_straight(&mut self, instrs: Vec<Instr>) {
        if !instrs.is_empty() {
            self.blocks.push(Block::Straight(instrs));
        }
    }

    /// Append a counted loop (zero-trip or empty loops are dropped).
    pub fn push_loop(&mut self, count: usize, body: Vec<Instr>) {
        if count > 0 && !body.is_empty() {
            self.blocks.push(Block::Loop { count, body });
        }
    }

    /// Total dynamic instruction count.
    pub fn dynamic_len(&self) -> usize {
        self.blocks.iter().map(Block::dynamic_len).sum()
    }

    /// Dynamic instruction count for one timing class.
    pub fn count_class(&self, class: InstrClass) -> usize {
        let count_in = |v: &[Instr]| v.iter().filter(|i| i.class() == class).count();
        self.blocks
            .iter()
            .map(|b| match b {
                Block::Straight(v) => count_in(v),
                Block::Loop { count, body } => count * count_in(body),
            })
            .sum()
    }

    /// Iterate over the fully unrolled dynamic instruction stream.
    pub fn unrolled(&self) -> impl Iterator<Item = &Instr> {
        self.blocks.iter().flat_map(|b| match b {
            Block::Straight(v) => UnrollIter::Straight(v.iter()),
            Block::Loop { count, body } => {
                UnrollIter::Loop { body, rep: *count, inner: body.iter() }
            }
        })
    }

    /// Render the whole program as AArch64-flavoured assembly text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("// {}\n", self.name));
        let mut label = 0;
        for block in &self.blocks {
            match block {
                Block::Straight(v) => {
                    for i in v {
                        out.push_str("    ");
                        out.push_str(&i.render());
                        out.push('\n');
                    }
                }
                Block::Loop { count, body } => {
                    label += 1;
                    out.push_str(&format!("    mov x29, #{count}\n{label}:\n"));
                    for i in body {
                        out.push_str("    ");
                        out.push_str(&i.render());
                        out.push('\n');
                    }
                    out.push_str(&format!("    subs x29, x29, #1\n    bne {label}b\n"));
                }
            }
        }
        out
    }
}

enum UnrollIter<'a> {
    Straight(std::slice::Iter<'a, Instr>),
    Loop { body: &'a [Instr], rep: usize, inner: std::slice::Iter<'a, Instr> },
}

impl<'a> Iterator for UnrollIter<'a> {
    type Item = &'a Instr;
    fn next(&mut self) -> Option<&'a Instr> {
        match self {
            UnrollIter::Straight(it) => it.next(),
            UnrollIter::Loop { body, rep, inner } => loop {
                if let Some(i) = inner.next() {
                    return Some(i);
                }
                if *rep <= 1 {
                    return None;
                }
                *rep -= 1;
                *inner = body.iter();
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{VReg, XReg};

    fn fmla(n: u8) -> Instr {
        Instr::Fmla { acc: VReg(n), mul: VReg(20), lane_src: VReg(21), lane: 0 }
    }

    #[test]
    fn dynamic_len_multiplies_loop_count() {
        let mut p = Program::new("t");
        p.push_straight(vec![fmla(0), fmla(1)]);
        p.push_loop(10, vec![fmla(2), fmla(3), fmla(4)]);
        assert_eq!(p.dynamic_len(), 2 + 30);
    }

    #[test]
    fn unrolled_iterates_loop_body_count_times() {
        let mut p = Program::new("t");
        p.push_loop(3, vec![fmla(0), fmla(1)]);
        let seq: Vec<_> = p.unrolled().collect();
        assert_eq!(seq.len(), 6);
        assert_eq!(*seq[0], fmla(0));
        assert_eq!(*seq[5], fmla(1));
    }

    #[test]
    fn empty_and_zero_trip_blocks_are_dropped() {
        let mut p = Program::new("t");
        p.push_straight(vec![]);
        p.push_loop(0, vec![fmla(0)]);
        p.push_loop(4, vec![]);
        assert!(p.blocks.is_empty());
        assert_eq!(p.dynamic_len(), 0);
    }

    #[test]
    fn count_class_distinguishes_classes() {
        let mut p = Program::new("t");
        p.push_straight(vec![
            Instr::Ldr { dst: VReg(0), base: XReg(0), offset: 0, post_inc: 16 },
            fmla(1),
        ]);
        p.push_loop(5, vec![fmla(2)]);
        assert_eq!(p.count_class(InstrClass::Fma), 6);
        assert_eq!(p.count_class(InstrClass::Load), 1);
        assert_eq!(p.count_class(InstrClass::Store), 0);
    }

    #[test]
    fn render_contains_loop_scaffolding() {
        let mut p = Program::new("k");
        p.push_loop(7, vec![fmla(0)]);
        let asm = p.render();
        assert!(asm.contains("mov x29, #7"));
        assert!(asm.contains("bne 1b"));
        assert!(asm.contains("fmla v0.4s"));
    }
}
