//! The virtual Arm-like instruction set micro-kernels are generated in.
//!
//! This mirrors the instruction vocabulary of the paper's Listing 1: NEON/SVE
//! vector loads (`ldr q`), stores (`str q`), fused multiply-add by lane
//! (`fmla v.4s, v.4s, v.s[i]`), software prefetch (`prfm`), and the scalar
//! address arithmetic (`mov`, `add`, `lsl`, `subs`) that walks row pointers.
//!
//! Control flow (the `kc` loop, `subs`/`bne`) is expressed structurally in
//! [`crate::program::Block::Loop`] rather than with labels, which keeps both
//! the functional interpreter and the pipeline simulator simple without
//! changing the instruction stream the hardware would see.

use serde::{Deserialize, Serialize};

/// A vector register `v0..v31` (NEON `q0..q31` / SVE `z0..z31`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VReg(pub u8);

impl VReg {
    /// Panics if `idx` is outside the 32-register file.
    pub fn new(idx: usize) -> Self {
        assert!(idx < 32, "vector register index {idx} out of range");
        VReg(idx as u8)
    }
}

impl std::fmt::Display for VReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A scalar (general-purpose) register `x0..x30`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct XReg(pub u8);

impl XReg {
    /// Panics if `idx` is outside the 31-register file.
    pub fn new(idx: usize) -> Self {
        assert!(idx < 31, "scalar register index {idx} out of range");
        XReg(idx as u8)
    }
}

impl std::fmt::Display for XReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Prefetch target cache level, as in `prfm PLDL1KEEP` / `PLDL2KEEP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetchLevel {
    L1,
    L2,
}

/// Timing class of an instruction. The pipeline simulator and the analytic
/// performance model both dispatch on this; it corresponds to the
/// `L_[fma/load/store]` / `IPC_[fma/load/store]` rows of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    Load,
    Store,
    Fma,
    Prefetch,
    /// Scalar ALU work: address arithmetic, loop-counter updates.
    Scalar,
}

/// One instruction of the virtual ISA.
///
/// Addressing follows the generated kernels' conventions: a base scalar
/// register holding a *byte* address, an immediate byte offset, and an
/// optional post-increment (in bytes) applied to the base register after the
/// access — exactly the `[%x[..]], #16` post-indexed forms of Listing 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `ldr qD, [xB, #off]` (+ optional post-increment of `xB`).
    Ldr { dst: VReg, base: XReg, offset: i64, post_inc: i64 },
    /// `str qS, [xB, #off]` (+ optional post-increment of `xB`).
    Str { src: VReg, base: XReg, offset: i64, post_inc: i64 },
    /// `fmla vA.4s, vM.4s, vL.s[lane]` — `acc += mul * lane_src[lane]`
    /// elementwise over all σ_lane lanes.
    Fmla { acc: VReg, mul: VReg, lane_src: VReg, lane: u8 },
    /// Zero a vector register (`movi vD.4s, #0`); used when the kernel
    /// computes `C = A·B` rather than `C += A·B`.
    Vzero { dst: VReg },
    /// `prfm PLDL{1,2}KEEP, [xB, #off]`.
    Prfm { base: XReg, offset: i64, level: PrefetchLevel },
    /// `mov xD, #imm`.
    MovImm { dst: XReg, imm: i64 },
    /// `mov xD, xS`.
    MovReg { dst: XReg, src: XReg },
    /// `add xD, xA, xB`.
    AddReg { dst: XReg, a: XReg, b: XReg },
    /// `add xD, xA, #imm`.
    AddImm { dst: XReg, a: XReg, imm: i64 },
    /// `lsl xD, xS, #shift` — the `lda *= 4` byte-scaling of Listing 1.
    Lsl { dst: XReg, src: XReg, shift: u8 },
}

impl Instr {
    /// The timing class the simulator schedules this instruction under.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Ldr { .. } => InstrClass::Load,
            Instr::Str { .. } => InstrClass::Store,
            Instr::Fmla { .. } => InstrClass::Fma,
            Instr::Vzero { .. } => InstrClass::Fma,
            Instr::Prfm { .. } => InstrClass::Prefetch,
            Instr::MovImm { .. }
            | Instr::MovReg { .. }
            | Instr::AddReg { .. }
            | Instr::AddImm { .. }
            | Instr::Lsl { .. } => InstrClass::Scalar,
        }
    }

    /// Vector registers read by this instruction.
    pub fn vreg_reads(&self) -> Vec<VReg> {
        match self {
            Instr::Fmla { acc, mul, lane_src, .. } => vec![*acc, *mul, *lane_src],
            Instr::Str { src, .. } => vec![*src],
            _ => vec![],
        }
    }

    /// Vector register written by this instruction, if any.
    pub fn vreg_write(&self) -> Option<VReg> {
        match self {
            Instr::Ldr { dst, .. } => Some(*dst),
            Instr::Fmla { acc, .. } => Some(*acc),
            Instr::Vzero { dst } => Some(*dst),
            _ => None,
        }
    }

    /// Scalar registers read by this instruction (including bases that are
    /// post-incremented, which are read-modify-write).
    pub fn xreg_reads(&self) -> Vec<XReg> {
        match self {
            Instr::Ldr { base, .. } | Instr::Str { base, .. } | Instr::Prfm { base, .. } => {
                vec![*base]
            }
            Instr::MovReg { src, .. } => vec![*src],
            Instr::AddReg { a, b, .. } => vec![*a, *b],
            Instr::AddImm { a, .. } => vec![*a],
            Instr::Lsl { src, .. } => vec![*src],
            _ => vec![],
        }
    }

    /// Scalar register written by this instruction, if any.
    pub fn xreg_write(&self) -> Option<XReg> {
        match self {
            Instr::Ldr { base, post_inc, .. } | Instr::Str { base, post_inc, .. } => {
                (*post_inc != 0).then_some(*base)
            }
            Instr::MovImm { dst, .. }
            | Instr::MovReg { dst, .. }
            | Instr::AddReg { dst, .. }
            | Instr::AddImm { dst, .. }
            | Instr::Lsl { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Render as AArch64-flavoured assembly text (NEON spelling).
    pub fn render(&self) -> String {
        match self {
            Instr::Ldr { dst, base, offset, post_inc } => {
                if *post_inc != 0 {
                    format!("ldr q{}, [{}], #{}", dst.0, base, post_inc)
                } else if *offset != 0 {
                    format!("ldr q{}, [{}, #{}]", dst.0, base, offset)
                } else {
                    format!("ldr q{}, [{}]", dst.0, base)
                }
            }
            Instr::Str { src, base, offset, post_inc } => {
                if *post_inc != 0 {
                    format!("str q{}, [{}], #{}", src.0, base, post_inc)
                } else if *offset != 0 {
                    format!("str q{}, [{}, #{}]", src.0, base, offset)
                } else {
                    format!("str q{}, [{}]", src.0, base)
                }
            }
            Instr::Fmla { acc, mul, lane_src, lane } => {
                format!("fmla {}.4s, {}.4s, {}.s[{}]", acc, mul, lane_src, lane)
            }
            Instr::Vzero { dst } => format!("movi {}.4s, #0", dst),
            Instr::Prfm { base, offset, level } => {
                let lvl = match level {
                    PrefetchLevel::L1 => "PLDL1KEEP",
                    PrefetchLevel::L2 => "PLDL2KEEP",
                };
                format!("prfm {lvl}, [{base}, #{offset}]")
            }
            Instr::MovImm { dst, imm } => format!("mov {dst}, #{imm}"),
            Instr::MovReg { dst, src } => format!("mov {dst}, {src}"),
            Instr::AddReg { dst, a, b } => format!("add {dst}, {a}, {b}"),
            Instr::AddImm { dst, a, imm } => format!("add {dst}, {a}, #{imm}"),
            Instr::Lsl { dst, src, shift } => format!("lsl {dst}, {src}, #{shift}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmla_reads_all_three_vregs_and_writes_acc() {
        let i = Instr::Fmla { acc: VReg(0), mul: VReg(1), lane_src: VReg(2), lane: 3 };
        assert_eq!(i.class(), InstrClass::Fma);
        assert_eq!(i.vreg_reads(), vec![VReg(0), VReg(1), VReg(2)]);
        assert_eq!(i.vreg_write(), Some(VReg(0)));
    }

    #[test]
    fn post_incremented_load_writes_its_base() {
        let i = Instr::Ldr { dst: VReg(5), base: XReg(6), offset: 0, post_inc: 16 };
        assert_eq!(i.xreg_write(), Some(XReg(6)));
        assert_eq!(i.xreg_reads(), vec![XReg(6)]);
        let plain = Instr::Ldr { dst: VReg(5), base: XReg(6), offset: 32, post_inc: 0 };
        assert_eq!(plain.xreg_write(), None);
    }

    #[test]
    fn render_matches_aarch64_spelling() {
        let i = Instr::Fmla { acc: VReg(7), mul: VReg(21), lane_src: VReg(20), lane: 2 };
        assert_eq!(i.render(), "fmla v7.4s, v21.4s, v20.s[2]");
        let l = Instr::Ldr { dst: VReg(20), base: XReg(6), offset: 0, post_inc: 16 };
        assert_eq!(l.render(), "ldr q20, [x6], #16");
        let p = Instr::Prfm { base: XReg(0), offset: 64, level: PrefetchLevel::L1 };
        assert_eq!(p.render(), "prfm PLDL1KEEP, [x0, #64]");
    }

    #[test]
    fn scalar_ops_are_scalar_class() {
        assert_eq!(Instr::Lsl { dst: XReg(3), src: XReg(3), shift: 2 }.class(), InstrClass::Scalar);
        assert_eq!(Instr::MovImm { dst: XReg(29), imm: 8 }.class(), InstrClass::Scalar);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vreg_bounds_checked() {
        let _ = VReg::new(32);
    }

    #[test]
    fn store_reads_source_vreg() {
        let s = Instr::Str { src: VReg(3), base: XReg(11), offset: 0, post_inc: 16 };
        assert_eq!(s.vreg_reads(), vec![VReg(3)]);
        assert_eq!(s.vreg_write(), None);
        assert_eq!(s.class(), InstrClass::Store);
    }
}
