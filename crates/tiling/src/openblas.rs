//! OpenBLAS-style static micro-tiling: one fixed tile shape everywhere,
//! with edge tiles padded (Fig 5-(a)).
//!
//! The kernel grid is `⌈m/m_r⌉ × ⌈n/n_r⌉`; tiles overhanging the block
//! still execute the full `m_r × n_r` kernel against zero-padded buffers,
//! so the overhang is pure wasted work — the performance penalty the paper
//! attributes to this strategy on irregular shapes.

use crate::plan::{Strategy, TilePlacement, TilePlan};
use autogemm_kernelgen::MicroTile;

/// Tile an `m × n` block with a single fixed `tile`, padding the edges.
pub fn plan_openblas(m: usize, n: usize, tile: MicroTile) -> TilePlan {
    let mut placements = Vec::new();
    let mut r = 0;
    while r < m {
        let eff_rows = tile.mr.min(m - r);
        let mut c = 0;
        while c < n {
            let eff_cols = tile.nr.min(n - c);
            placements.push(TilePlacement { row: r, col: c, tile, eff_rows, eff_cols });
            c += tile.nr;
        }
        r += tile.mr;
    }
    TilePlan { m, n, strategy: Strategy::OpenBlas, placements }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_26x36_with_5x16_gives_18_tiles_8_padded() {
        // The paper's worked example: 8 corner micro-tiles are padded.
        let plan = plan_openblas(26, 36, MicroTile::new(5, 16));
        assert_eq!(plan.tile_count(), 18);
        let padded = plan.placements.iter().filter(|p| p.padded_elems() > 0).count();
        assert_eq!(padded, 8);
        plan.validate(4).expect("exact cover of the interior");
    }

    #[test]
    fn exact_fit_has_no_padding() {
        let plan = plan_openblas(10, 32, MicroTile::new(5, 16));
        assert_eq!(plan.tile_count(), 4);
        assert_eq!(plan.padded_elems(), 0);
    }

    #[test]
    fn padding_fraction_grows_for_hostile_shapes() {
        // 6 x 17 with 5x16: 4 tiles, mostly padding.
        let plan = plan_openblas(6, 17, MicroTile::new(5, 16));
        assert_eq!(plan.tile_count(), 4);
        let work = plan.tile_count() * 5 * 16;
        assert!(plan.padded_elems() * 2 > work, "padding should dominate");
    }

    #[test]
    fn all_kernels_are_the_fixed_tile() {
        let tile = MicroTile::new(4, 20);
        let plan = plan_openblas(26, 36, tile);
        assert!(plan.placements.iter().all(|p| p.tile == tile));
    }
}
