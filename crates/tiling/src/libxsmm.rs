//! LIBXSMM-style static micro-tiling: a fixed main tile for the interior,
//! shrunken kernels on the edge strips (Fig 5-(b)).
//!
//! No work is wasted on padding, but the edge kernels can have very low
//! arithmetic intensity (e.g. `1×16` strips), which is the penalty the
//! paper attributes to this strategy.

use crate::plan::{grid_region, Strategy, TilePlan};
use autogemm_kernelgen::MicroTile;

/// Tile an `m × n` block with `tile` in the interior and edge-fitted
/// kernels on the remainder strips. Edge kernel widths are rounded up to a
/// lane multiple of `sigma_lane` (the generated kernels require it); any
/// overhang from that rounding stays within the packed buffers.
pub fn plan_libxsmm(m: usize, n: usize, tile: MicroTile, sigma_lane: usize) -> TilePlan {
    let mut placements = Vec::new();
    let m_main = m / tile.mr * tile.mr;
    let n_main = n / tile.nr * tile.nr;
    // Interior grid of full tiles.
    grid_region(0, 0, m_main, n_main, tile, sigma_lane, &mut placements);
    // Right edge strip: full-height rows of shrunken width.
    if n > n_main {
        grid_region(0, n_main, m_main, n - n_main, tile, sigma_lane, &mut placements);
    }
    // Bottom edge strip: shrunken height, full width.
    if m > m_main {
        grid_region(m_main, 0, m - m_main, n_main, tile, sigma_lane, &mut placements);
    }
    // Corner.
    if m > m_main && n > n_main {
        grid_region(m_main, n_main, m - m_main, n - n_main, tile, sigma_lane, &mut placements);
    }
    TilePlan { m, n, strategy: Strategy::Libxsmm, placements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_arch::ChipSpec;

    #[test]
    fn fig5b_26x36_with_5x16_gives_18_tiles_8_low_ai() {
        // Paper: LIBXSMM produces 18 tiles on C(26,36), 8 of them with low
        // arithmetic intensity.
        let plan = plan_libxsmm(26, 36, MicroTile::new(5, 16), 4);
        assert_eq!(plan.tile_count(), 18);
        plan.validate(4).expect("exact cover");
        assert_eq!(plan.padded_elems(), 0, "edge tiles shrink instead of padding");
        // Low-AI on a σ_AI ≈ 5.5-7 chip: the 5×4 right strip (AI 4.44),
        // the 1×16 bottom strip (AI 1.88) and the 1×4 corner.
        let chip = ChipSpec::kp920();
        assert_eq!(plan.low_ai_count(&chip), 8);
    }

    #[test]
    fn exact_fit_equals_openblas_grid() {
        let tile = MicroTile::new(5, 16);
        let plan = plan_libxsmm(25, 64, tile, 4);
        assert_eq!(plan.tile_count(), 5 * 4);
        assert!(plan.placements.iter().all(|p| p.tile == tile));
    }

    #[test]
    fn edge_kernels_shrink_to_fit() {
        let plan = plan_libxsmm(7, 20, MicroTile::new(5, 16), 4);
        plan.validate(4).expect("cover");
        // Bottom strip uses 2-row kernels, right strip 4-wide kernels.
        assert!(plan.placements.iter().any(|p| p.tile.mr == 2));
        assert!(plan.placements.iter().any(|p| p.tile.nr == 4));
    }

    #[test]
    fn no_padding_ever() {
        for (m, n) in [(26, 36), (7, 20), (31, 44), (5, 16)] {
            let plan = plan_libxsmm(m, n, MicroTile::new(5, 16), 4);
            assert_eq!(plan.padded_elems(), 0, "{m}x{n}");
        }
    }
}
