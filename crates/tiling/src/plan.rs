//! Tile plans: the output of every micro-tiling strategy.

use autogemm_arch::ChipSpec;
use autogemm_kernelgen::MicroTile;
use autogemm_perfmodel::micro::effective_cycles;
use autogemm_perfmodel::{projected_cycles, ModelOpts};
use serde::{Deserialize, Serialize};

/// Which strategy produced a plan (Fig 5's three panels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Fixed tile + padding (OpenBLAS-style).
    OpenBlas,
    /// Fixed interior tile + shrunken edge tiles (LIBXSMM-style).
    Libxsmm,
    /// Dynamic Micro-Tiling (autoGEMM, Algorithm 1).
    Dmt,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Strategy::OpenBlas => "OpenBLAS",
            Strategy::Libxsmm => "LIBXSMM",
            Strategy::Dmt => "DMT",
        })
    }
}

/// One micro-kernel invocation within a block: the kernel tile shape and
/// the placement of its top-left corner. `eff_rows/eff_cols` give the
/// portion that lands inside the block; anything beyond is padded work
/// (only the OpenBLAS strategy produces padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilePlacement {
    pub row: usize,
    pub col: usize,
    /// The micro-kernel actually invoked.
    pub tile: MicroTile,
    /// Rows of the tile inside the block (`<= tile.mr`).
    pub eff_rows: usize,
    /// Columns of the tile inside the block (`<= tile.nr`).
    pub eff_cols: usize,
}

impl TilePlacement {
    pub fn full(row: usize, col: usize, tile: MicroTile) -> Self {
        TilePlacement { row, col, tile, eff_rows: tile.mr, eff_cols: tile.nr }
    }

    /// Elements of wasted (padded) work.
    pub fn padded_elems(&self) -> usize {
        self.tile.mr * self.tile.nr - self.eff_rows * self.eff_cols
    }
}

/// A complete tiling of an `m × n` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TilePlan {
    pub m: usize,
    pub n: usize,
    pub strategy: Strategy,
    pub placements: Vec<TilePlacement>,
}

impl TilePlan {
    /// Number of micro-kernel invocations.
    pub fn tile_count(&self) -> usize {
        self.placements.len()
    }

    /// Tiles whose kernel shape falls below the chip's `σ_AI` threshold
    /// (the "low arithmetic intensity" tiles of Fig 5's analysis).
    pub fn low_ai_count(&self, chip: &ChipSpec) -> usize {
        self.placements.iter().filter(|p| p.tile.ai_max() < chip.sigma_ai).count()
    }

    /// Total padded (wasted) elements across the plan.
    pub fn padded_elems(&self) -> usize {
        self.placements.iter().map(TilePlacement::padded_elems).sum()
    }

    /// Projected cycles of executing the plan at reduction depth `kc`
    /// (Eqn 13 generalized to arbitrary placements).
    pub fn projected_cycles(&self, kc: usize, chip: &ChipSpec, opts: ModelOpts) -> f64 {
        self.placements.iter().map(|p| projected_cycles(p.tile, kc, chip, opts)).sum()
    }

    /// Projected cycles including the `σ_AI` derating — the metric DMT
    /// optimizes (Algorithm 1 condition 1).
    pub fn effective_cycles(&self, kc: usize, chip: &ChipSpec, opts: ModelOpts) -> f64 {
        self.placements.iter().map(|p| effective_cycles(p.tile, kc, chip, opts)).sum()
    }

    /// Verify the plan covers every cell of the block exactly once with
    /// the non-padded portions of its tiles, and that every kernel tile is
    /// feasible for `sigma_lane`.
    pub fn validate(&self, sigma_lane: usize) -> Result<(), String> {
        let mut cover = vec![0u8; self.m * self.n];
        for p in &self.placements {
            if !p.tile.feasible(sigma_lane) {
                return Err(format!("infeasible tile {} at ({},{})", p.tile, p.row, p.col));
            }
            if p.eff_rows > p.tile.mr || p.eff_cols > p.tile.nr {
                return Err(format!("effective area exceeds tile {} dims", p.tile));
            }
            for r in p.row..p.row + p.eff_rows {
                for c in p.col..p.col + p.eff_cols {
                    if r >= self.m || c >= self.n {
                        return Err(format!(
                            "placement at ({},{}) escapes the {}x{} block",
                            p.row, p.col, self.m, self.n
                        ));
                    }
                    cover[r * self.n + c] += 1;
                }
            }
        }
        for r in 0..self.m {
            for c in 0..self.n {
                match cover[r * self.n + c] {
                    1 => {}
                    0 => return Err(format!("cell ({r},{c}) uncovered")),
                    k => return Err(format!("cell ({r},{c}) covered {k} times")),
                }
            }
        }
        Ok(())
    }

    /// Render a compact ASCII picture of the plan (rows × cols, one letter
    /// per tile) — handy for eyeballing Fig 5 reproductions.
    pub fn ascii_art(&self) -> String {
        let mut grid = vec![b'.'; self.m * self.n];
        for (idx, p) in self.placements.iter().enumerate() {
            let ch = b'A' + (idx % 26) as u8;
            for r in p.row..(p.row + p.eff_rows).min(self.m) {
                for c in p.col..(p.col + p.eff_cols).min(self.n) {
                    grid[r * self.n + c] = ch;
                }
            }
        }
        let mut out = String::with_capacity(self.m * (self.n + 1));
        for r in 0..self.m {
            for c in 0..self.n {
                out.push(grid[r * self.n + c] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// Grid a rectangular region `[row0, row0+m) × [col0, col0+n)` with `tile`,
/// shrinking edge tiles to fit (LIBXSMM-style interior helper shared by
/// strategies). Shrunken column extents are rounded up to `sigma_lane`
/// *kernel* width only when `pad_cols` is set; otherwise the kernel runs an
/// exact smaller width (which must itself be a lane multiple to be
/// feasible — callers guarantee this by construction or accept padding).
pub(crate) fn grid_region(
    row0: usize,
    col0: usize,
    m: usize,
    n: usize,
    tile: MicroTile,
    sigma_lane: usize,
    out: &mut Vec<TilePlacement>,
) {
    let mut r = 0;
    while r < m {
        let mr = tile.mr.min(m - r);
        let mut c = 0;
        while c < n {
            let nc = tile.nr.min(n - c);
            // Kernel width must be a lane multiple; shrink to the largest
            // feasible multiple and let the caller's layout guarantee that
            // n is a lane multiple overall.
            let kernel_nr = nc.div_ceil(sigma_lane) * sigma_lane;
            out.push(TilePlacement {
                row: row0 + r,
                col: col0 + c,
                tile: MicroTile::new(mr, kernel_nr),
                eff_rows: mr,
                eff_cols: nc,
            });
            c += nc;
        }
        r += mr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_exact_cover() {
        let plan = TilePlan {
            m: 8,
            n: 16,
            strategy: Strategy::Dmt,
            placements: vec![
                TilePlacement::full(0, 0, MicroTile::new(8, 8)),
                TilePlacement::full(0, 8, MicroTile::new(8, 8)),
            ],
        };
        assert!(plan.validate(4).is_ok());
        assert_eq!(plan.tile_count(), 2);
        assert_eq!(plan.padded_elems(), 0);
    }

    #[test]
    fn validate_rejects_gaps_and_overlaps() {
        let gap = TilePlan {
            m: 8,
            n: 16,
            strategy: Strategy::Dmt,
            placements: vec![TilePlacement::full(0, 0, MicroTile::new(8, 8))],
        };
        assert!(gap.validate(4).unwrap_err().contains("uncovered"));
        let overlap = TilePlan {
            m: 8,
            n: 8,
            strategy: Strategy::Dmt,
            placements: vec![
                TilePlacement::full(0, 0, MicroTile::new(8, 8)),
                TilePlacement::full(0, 0, MicroTile::new(8, 8)),
            ],
        };
        assert!(overlap.validate(4).unwrap_err().contains("covered 2 times"));
    }

    #[test]
    fn padded_elems_counts_waste() {
        let p = TilePlacement {
            row: 0,
            col: 0,
            tile: MicroTile::new(5, 16),
            eff_rows: 1,
            eff_cols: 16,
        };
        assert_eq!(p.padded_elems(), 64);
    }

    #[test]
    fn low_ai_counts_against_sigma_ai() {
        let chip = ChipSpec::kp920(); // σ_AI = 7.0
        let plan = TilePlan {
            m: 6,
            n: 16,
            strategy: Strategy::Libxsmm,
            placements: vec![
                TilePlacement::full(0, 0, MicroTile::new(5, 16)), // AI 7.62
                TilePlacement::full(5, 0, MicroTile::new(1, 16)), // AI 1.88
            ],
        };
        assert_eq!(plan.low_ai_count(&chip), 1);
    }

    #[test]
    fn grid_region_covers_ragged_blocks() {
        let mut placements = Vec::new();
        grid_region(0, 0, 26, 36, MicroTile::new(5, 16), 4, &mut placements);
        let plan = TilePlan { m: 26, n: 36, strategy: Strategy::Libxsmm, placements };
        plan.validate(4).expect("exact cover");
    }

    #[test]
    fn ascii_art_dimensions() {
        let plan = TilePlan {
            m: 2,
            n: 4,
            strategy: Strategy::Dmt,
            placements: vec![TilePlacement::full(0, 0, MicroTile::new(2, 4))],
        };
        let art = plan.ascii_art();
        assert_eq!(art.lines().count(), 2);
        assert!(art.starts_with("AAAA"));
    }
}
