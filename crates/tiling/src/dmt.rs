//! Dynamic Micro-Tiling — Algorithm 1 of the paper (§IV-A2).
//!
//! DMT splits the block `C(m_c, n_c)` into four quadrants with three cut
//! parameters (`n_front`, `m_front_up`, `m_back_up`), evaluates every
//! feasible micro-kernel shape for each quadrant with the projected-runtime
//! model `T_r` (Eqns 4–11), and keeps the split minimizing total projected
//! cycles. The effect (Fig 5-(c)): balanced tiles with high arithmetic
//! intensity, fewer tiles than the static strategies, and — on low-`σ_AI`
//! hardware — no low-AI tiles at all.
//!
//! The quadrant cost `T(m, n)` prefers exact single-shape covers (the
//! algorithm as published); quadrants no single Table II shape divides are
//! charged and gridded with edge-fitted kernels like LIBXSMM (a remainder
//! fallback the published pseudo-code leaves implicit).

use crate::plan::{grid_region, Strategy, TilePlacement, TilePlan};
use autogemm_arch::ChipSpec;
use autogemm_kernelgen::{tiles, MicroTile};
use autogemm_perfmodel::micro::effective_cycles;
use autogemm_perfmodel::submatrix::region_cycles_derated;
use autogemm_perfmodel::ModelOpts;

/// How a quadrant is tiled.
#[derive(Debug, Clone, Copy)]
enum QuadrantCover {
    /// Exact grid of one shape.
    Exact(MicroTile),
    /// Edge-fitted grid of one main shape (LIBXSMM-like remainder).
    Ragged(MicroTile),
}

/// The per-quadrant cost function `T(m, n)` of Algorithm 1 (lines 11-16):
/// minimize over Table II shapes. Exact covers use
/// `(m/m_r)·(n/n_r)·T_r(m_r, n_r)`; ragged covers fall back to
/// [`region_cycles`] with a 5% penalty so exact covers win ties.
fn quadrant_cost(
    m: usize,
    n: usize,
    kc: usize,
    chip: &ChipSpec,
    opts: ModelOpts,
    shapes: &[MicroTile],
) -> Option<(f64, QuadrantCover)> {
    if m == 0 || n == 0 {
        return Some((0.0, QuadrantCover::Exact(MicroTile::new(1, chip.sigma_lane()))));
    }
    let mut best: Option<(f64, QuadrantCover)> = None;
    for &tile in shapes {
        let cost = if m.is_multiple_of(tile.mr) && n.is_multiple_of(tile.nr) {
            let count = (m / tile.mr) * (n / tile.nr);
            Some((
                count as f64 * effective_cycles(tile, kc, chip, opts),
                QuadrantCover::Exact(tile),
            ))
        } else {
            Some((
                region_cycles_derated(m, n, tile, kc, chip, opts) * 1.05,
                QuadrantCover::Ragged(tile),
            ))
        };
        if let Some((c, cover)) = cost {
            if best.is_none_or(|(b, _)| c < b) {
                best = Some((c, cover));
            }
        }
    }
    best
}

fn emit_quadrant(
    row0: usize,
    col0: usize,
    m: usize,
    n: usize,
    cover: QuadrantCover,
    sigma_lane: usize,
    out: &mut Vec<TilePlacement>,
) {
    if m == 0 || n == 0 {
        return;
    }
    match cover {
        QuadrantCover::Exact(tile) => {
            for r in (0..m).step_by(tile.mr) {
                for c in (0..n).step_by(tile.nr) {
                    out.push(TilePlacement::full(row0 + r, col0 + c, tile));
                }
            }
        }
        QuadrantCover::Ragged(tile) => {
            grid_region(row0, col0, m, n, tile, sigma_lane, out);
        }
    }
}

/// Run Algorithm 1 on a block `C(m × n)` at reduction depth `kc`.
///
/// `n` cuts are lane-aligned (every kernel width must be a multiple of
/// `σ_lane`); `m` cuts are unrestricted, exactly as in the paper.
pub fn plan_dmt(m: usize, n: usize, kc: usize, chip: &ChipSpec, opts: ModelOpts) -> TilePlan {
    let sigma = chip.sigma_lane();
    let shapes = tiles::table_menu(sigma);

    // Memoized quadrant costs, keyed by the exact (m', n') extent: when N
    // is not a lane multiple, the n_back widths are not lane-aligned, so a
    // lane-bucketed index would collide distinct widths.
    let mut memo: std::collections::HashMap<(usize, usize), (f64, QuadrantCover)> =
        std::collections::HashMap::new();
    let cost_of =
        |mm: usize,
         nn: usize,
         memo: &mut std::collections::HashMap<(usize, usize), (f64, QuadrantCover)>| {
            *memo
                .entry((mm, nn))
                .or_insert_with(|| quadrant_cost(mm, nn, kc, chip, opts, &shapes).unwrap())
        };

    // The objective separates: for a fixed n_front, the best m_front_up
    // and m_back_up are independent, so the O(n·m²) triple loop of the
    // published pseudo-code collapses to O(n·m) without changing the
    // result.
    let mut best_cost = f64::INFINITY;
    let mut best_split = (0usize, 0usize, 0usize);
    for n_front in (0..=n).step_by(sigma) {
        let n_back = n - n_front;
        let mut best_front = (f64::INFINITY, 0usize);
        let mut best_back = (f64::INFINITY, 0usize);
        for m_up in 0..=m {
            let (c_fu, _) = cost_of(m_up, n_front, &mut memo);
            let (c_fd, _) = cost_of(m - m_up, n_front, &mut memo);
            if c_fu + c_fd < best_front.0 {
                best_front = (c_fu + c_fd, m_up);
            }
            let (c_bu, _) = cost_of(m_up, n_back, &mut memo);
            let (c_bd, _) = cost_of(m - m_up, n_back, &mut memo);
            if c_bu + c_bd < best_back.0 {
                best_back = (c_bu + c_bd, m_up);
            }
        }
        let total = best_front.0 + best_back.0;
        if total < best_cost {
            best_cost = total;
            best_split = (n_front, best_front.1, best_back.1);
        }
    }

    let (n_front, m_front_up, m_back_up) = best_split;
    let n_back = n - n_front;
    let mut placements = Vec::new();
    let (_, cover_fu) = cost_of(m_front_up, n_front, &mut memo);
    let (_, cover_fd) = cost_of(m - m_front_up, n_front, &mut memo);
    let (_, cover_bu) = cost_of(m_back_up, n_back, &mut memo);
    let (_, cover_bd) = cost_of(m - m_back_up, n_back, &mut memo);
    emit_quadrant(0, 0, m_front_up, n_front, cover_fu, sigma, &mut placements);
    emit_quadrant(m_front_up, 0, m - m_front_up, n_front, cover_fd, sigma, &mut placements);
    emit_quadrant(0, n_front, m_back_up, n_back, cover_bu, sigma, &mut placements);
    emit_quadrant(m_back_up, n_front, m - m_back_up, n_back, cover_bd, sigma, &mut placements);

    TilePlan { m, n, strategy: Strategy::Dmt, placements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plan_libxsmm, plan_openblas};

    fn default_opts() -> ModelOpts {
        ModelOpts { rotate: true, fused: true }
    }

    #[test]
    fn fig5c_26x36_beats_static_strategies() {
        // Paper: OpenBLAS and LIBXSMM both need 18 micro-tiles on C(26,36);
        // DMT needs 13, with at most 2 low-AI tiles.
        let chip = ChipSpec::graviton2();
        let plan = plan_dmt(26, 36, 64, &chip, default_opts());
        plan.validate(4).expect("exact cover");
        assert!(plan.tile_count() <= 14, "DMT used {} tiles (paper: 13)", plan.tile_count());
        assert!(plan.tile_count() < 18);
        assert!(plan.low_ai_count(&chip) <= 2, "low-AI tiles: {}", plan.low_ai_count(&chip));
    }

    #[test]
    fn dmt_projected_cycles_never_worse_than_static() {
        let opts = default_opts();
        for chip in [ChipSpec::kp920(), ChipSpec::graviton2(), ChipSpec::m2()] {
            for (m, n) in [(26, 36), (26, 64), (80, 32), (25, 64), (13, 20), (31, 44)] {
                let kc = 64;
                let dmt = plan_dmt(m, n, kc, &chip, opts).effective_cycles(kc, &chip, opts);
                let ob =
                    plan_openblas(m, n, MicroTile::new(5, 16)).effective_cycles(kc, &chip, opts);
                let xs =
                    plan_libxsmm(m, n, MicroTile::new(5, 16), 4).effective_cycles(kc, &chip, opts);
                assert!(
                    dmt <= ob * 1.001 && dmt <= xs * 1.001,
                    "{} {m}x{n}: dmt {dmt:.0} vs openblas {ob:.0} / libxsmm {xs:.0}",
                    chip.name
                );
            }
        }
    }

    #[test]
    fn exact_shapes_tie_with_static_5x16_tiling() {
        // Fig 7: at 80×32 and 25×64 all three strategies pick the same
        // 5×16 grid — no gains for DMT.
        let chip = ChipSpec::kp920();
        let opts = default_opts();
        for (m, n) in [(80, 32), (25, 64)] {
            let dmt = plan_dmt(m, n, 64, &chip, opts);
            let xs = plan_libxsmm(m, n, MicroTile::new(5, 16), 4);
            assert_eq!(dmt.tile_count(), xs.tile_count(), "{m}x{n}");
            let d = dmt.effective_cycles(64, &chip, opts);
            let x = xs.effective_cycles(64, &chip, opts);
            assert!((d - x).abs() / x < 1e-6, "{m}x{n}: {d} vs {x}");
        }
    }

    #[test]
    fn sigma_ai_changes_the_26x64_plan() {
        // Fig 5-(c)/Fig 7 26×64: on low-σ_AI hardware DMT eliminates
        // low-AI tiles entirely (4×16 edges reach peak); on high-σ_AI
        // hardware it minimizes their number instead.
        let opts = default_opts();
        let low = plan_dmt(26, 64, 64, &ChipSpec::graviton2(), opts);
        assert_eq!(
            low.low_ai_count(&ChipSpec::graviton2()),
            0,
            "low-σ_AI hardware should see no low-AI tiles:\n{}",
            low.ascii_art()
        );
        let high = plan_dmt(26, 64, 64, &ChipSpec::kp920(), opts);
        assert!(high.low_ai_count(&ChipSpec::kp920()) <= 2);
    }

    #[test]
    fn dmt_covers_awkward_shapes_exactly() {
        let chip = ChipSpec::graviton2();
        for (m, n) in [(1, 4), (3, 8), (7, 12), (11, 20), (26, 36), (53, 92), (17, 4)] {
            let plan = plan_dmt(m, n, 32, &chip, default_opts());
            plan.validate(4).unwrap_or_else(|e| panic!("{m}x{n}: {e}"));
        }
    }

    #[test]
    fn sve_dmt_uses_16_lane_tiles() {
        let chip = ChipSpec::a64fx();
        let plan = plan_dmt(24, 64, 64, &chip, default_opts());
        plan.validate(16).expect("cover");
        assert!(plan.placements.iter().all(|p| p.tile.nr % 16 == 0));
    }

    #[test]
    fn dmt_minimizes_tiles_on_balanced_splits() {
        // 26 = 5*4 + 6 = ... DMT should find e.g. 16+20 column split with
        // 5x16/4x20-family tiles rather than 1-wide strips.
        let chip = ChipSpec::m2();
        let plan = plan_dmt(26, 36, 64, &chip, default_opts());
        let tiny = plan.placements.iter().filter(|p| p.tile.mr == 1 && p.tile.nr <= 8).count();
        assert!(tiny <= 1, "too many tiny tiles:\n{}", plan.ascii_art());
    }
}
