//! # autogemm-tiling
//!
//! Micro-tiling of a cache block `C(m_c, n_c)` into register tiles — §IV-A
//! of the autoGEMM paper.
//!
//! Three strategies are implemented, matching Fig 5:
//!
//! * [`openblas::plan_openblas`] — one fixed tile shape, edges handled by
//!   padding (wasted work on the padded fraction);
//! * [`libxsmm::plan_libxsmm`] — one fixed tile shape for the interior,
//!   shrunken tiles on the edge strips (possibly very low arithmetic
//!   intensity);
//! * [`dmt::plan_dmt`] — the paper's Dynamic Micro-Tiling (Algorithm 1):
//!   split the block into four quadrants (`n_front`, `m_front_up`,
//!   `m_back_up`), choose the best-projected micro-kernel for each, and
//!   keep the split minimizing total projected cycles.
//!
//! Every strategy produces a [`plan::TilePlan`], which downstream code can
//! validate (exact cover), score (tile count, low-AI count, padded work —
//! the Fig 5 statistics), cost-model (Eqn 13), execute on the simulator, or
//! run natively.

pub mod dmt;
pub mod libxsmm;
pub mod openblas;
pub mod plan;

pub use dmt::plan_dmt;
pub use libxsmm::plan_libxsmm;
pub use openblas::plan_openblas;
pub use plan::{Strategy, TilePlacement, TilePlan};
