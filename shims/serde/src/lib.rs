//! Offline stub of `serde`: just enough surface for this workspace.
//!
//! The workspace derives `Serialize`/`Deserialize` on config/spec types
//! for forward compatibility but performs no serde-based (de)serialization
//! anywhere — every artifact is emitted with hand-rolled formatting. This
//! shim provides the two marker traits plus the no-op derive re-exports so
//! the crates compile without registry access. If real serialization is
//! ever needed, replace the `shims/serde*` path dependencies with the real
//! crates.

/// Marker stand-in for `serde::Serialize` (no methods; the no-op derive
/// emits no impl, and nothing in the workspace takes `T: Serialize`).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (same caveats as
/// [`Serialize`]).
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
