//! Offline stub of `parking_lot`'s `Mutex`/`RwLock`, backed by
//! `std::sync`. The parking_lot API differences that matter here are (a)
//! no poisoning — `lock()` returns the guard directly — and (b) `const`
//! constructors; both are reproduced. Performance characteristics are
//! std's, which is fine for the coarse memoization caches these protect.

use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Like parking_lot, never returns a poison error: a panicked holder
    /// does not wedge the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5usize);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
