//! Offline stub of the `criterion` benching API used by this workspace.
//!
//! Unlike the other shims this one does real work: each benchmark is
//! warmed up, auto-calibrated to a per-sample iteration count, measured
//! over `sample_size` samples, and reported as min/median/mean wall-clock
//! time per iteration (plus throughput when declared). There is no
//! statistical outlier analysis, HTML report, or saved baseline — numbers
//! go to stdout, and the `BENCH_*.json` artifacts are produced by the
//! dedicated bench binaries instead.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Throughput declaration, echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing loop handle passed to the bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_sampled<F: FnMut(&mut Bencher)>(mut f: F, sample_size: usize) -> Vec<f64> {
    // Calibrate: grow the iteration count until one sample takes >= 1 ms
    // (or a single iteration is already slower than that).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter_ns = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_secs_f64() * 1e9 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    per_iter_ns
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(group: &str, id: &str, samples: &[f64], throughput: Option<Throughput>) {
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];
    let extra = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  thrpt: {:.2} GiB/s", b as f64 / median / 1.073_741_824)
        }
        Some(Throughput::Elements(e)) => {
            format!("  thrpt: {:.2} Melem/s", e as f64 * 1e3 / median)
        }
        None => String::new(),
    };
    println!(
        "{group}/{id:<40} time: [min {} median {} mean {}]{extra}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

/// Group of related benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = run_sampled(|b| f(b, input), self.sample_size);
        report(&self.name, &id.id, &samples, self.throughput);
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let samples = run_sampled(&mut f, self.sample_size);
        report(&self.name, &id.to_string(), &samples, self.throughput);
    }

    pub fn finish(self) {}
}

/// The harness entry point handed to each bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = run_sampled(&mut f, 20);
        report("bench", &id.to_string(), &samples, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
