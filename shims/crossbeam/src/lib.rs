//! Offline stub of the `crossbeam::scope` API, implemented on
//! `std::thread::scope` (stable since Rust 1.63, so the external crate is
//! no longer load-bearing for this workspace).
//!
//! Semantics note: `crossbeam::scope` returns `Err` when a child thread
//! panics; `std::thread::scope` re-raises the child panic when the scope
//! closes. Every call site in this workspace immediately does
//! `.expect("... panicked")` on the result, so the two behaviours are
//! equivalent here — a child panic aborts the test/process either way.

use std::thread;

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`. The spawn
/// closure receives a `&Scope` again (crossbeam's nested-spawn affordance);
/// all call sites in this workspace ignore it (`|_|`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Drop-in for `crossbeam::scope`: spawned threads are joined before this
/// returns, and borrows of `'env` data are allowed inside.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

pub mod thread_mod {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrows_and_join() {
        let data = [1usize, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                let sum = &sum;
                s.spawn(move |_| {
                    sum.fetch_add(chunk.iter().sum(), Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn scope_returns_closure_value() {
        let r = scope(|s| {
            let h = s.spawn(|_| 21usize);
            h.join().unwrap() * 2
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
