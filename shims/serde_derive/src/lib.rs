//! No-op stand-ins for serde's derive macros.
//!
//! The repository derives `Serialize`/`Deserialize` on plain-old-data
//! types but never serializes them through a `serde` data format (tables
//! and JSON artifacts are written by hand). The build environment has no
//! registry access, so these derives simply accept the input and emit
//! nothing; the marker traits live in the sibling `serde` shim.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
