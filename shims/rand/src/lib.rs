//! Offline stub of the slice of `rand 0.9` this workspace uses: a
//! deterministic `StdRng` (SplitMix64), `SeedableRng::seed_from_u64`, and
//! the `Rng::{random, random_range}` methods. The annealer only needs a
//! reproducible, reasonably well-mixed stream — not cryptographic quality
//! — so SplitMix64 (the seeding generator of the real `StdRng`) is
//! sufficient and keeps the stub dependency-free.

use std::ops::Range;

/// Types samplable uniformly from a `u64` draw (stand-in for
/// `rand::distr::StandardUniform`).
pub trait FromRandom {
    fn from_random(v: u64) -> Self;
}

impl FromRandom for f64 {
    /// Uniform in `[0, 1)`: top 53 bits scaled by 2^-53.
    fn from_random(v: u64) -> f64 {
        (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random(v: u64) -> f32 {
        (v >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRandom for bool {
    fn from_random(v: u64) -> bool {
        v & 1 == 1
    }
}

impl FromRandom for u64 {
    fn from_random(v: u64) -> u64 {
        v
    }
}

impl FromRandom for u32 {
    fn from_random(v: u64) -> u32 {
        (v >> 32) as u32
    }
}

impl FromRandom for usize {
    fn from_random(v: u64) -> usize {
        v as usize
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange {
    type Output;
    fn sample(self, v: u64) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, v: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (v % span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, v: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (v as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_range!(i64, i32, i16, i8, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, v: u64) -> f64 {
        self.start + f64::from_random(v) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample(self, v: u64) -> f32 {
        self.start + f32::from_random(v) * (self.end - self.start)
    }
}

/// The `rand::Rng` stand-in: everything is derived from `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn random<T: FromRandom>(&mut self) -> T {
        T::from_random(self.next_u64())
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self.next_u64())
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The `rand::SeedableRng` stand-in (only `seed_from_u64` is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn stream_is_reasonably_mixed() {
        let mut rng = StdRng::seed_from_u64(42);
        let draws: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let mut sorted = draws.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), draws.len(), "no repeats in a short stream");
        let ones: u32 = draws.iter().map(|v| v.count_ones()).sum();
        let avg = ones as f64 / draws.len() as f64;
        assert!((24.0..40.0).contains(&avg), "bit balance off: {avg}");
    }
}
