//! Offline stub of the `proptest` surface this workspace uses.
//!
//! Semantics: each `proptest!` test runs `Config::cases` deterministic
//! pseudo-random cases (seeded from the test's module path and name, so
//! runs are reproducible). Case 0 samples every strategy at its minimum —
//! the all-minimums corner (e.g. `m = n = k = 1`, the historical
//! regression in `tests/correctness.proptest-regressions`) is therefore
//! always exercised. Unlike real proptest there is **no shrinking** and no
//! persistence of failing seeds; a failure reports the concrete case
//! index and message instead.

pub mod test_runner {
    use std::fmt;

    /// Stand-in for `proptest::test_runner::Config` (aliased to
    /// `ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!` and friends.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test identity and
    /// case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
        /// Case 0 asks strategies for their minimum value.
        pub minimum: bool,
    }

    impl TestRng {
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15),
                minimum: case == 0,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Value generator (no shrinking). `sample` must honour
    /// `rng.minimum` by returning the strategy's smallest value.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// `Strategy` produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of one value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    if rng.minimum {
                        return self.start;
                    }
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    if rng.minimum {
                        return self.start;
                    }
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + unit as $t * (self.end - self.start)
                }
            }
        )*};
    }
    float_strategy!(f64, f32);

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `proptest::bool::ANY`: uniform booleans (minimum = `false`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            !rng.minimum && rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: Any = Any;
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_excl: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_excl: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = if rng.minimum || span <= 1 {
                self.size.min
            } else {
                self.size.min + (rng.next_u64() % span) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run `Config::cases` deterministic cases of each enclosed test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {} of {} failed for ({}): {}",
                        __case,
                        stringify!($name),
                        stringify!($($arg = $strat),*),
                        e
                    );
                }
            }
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {} ({:?} != {:?})",
            stringify!($a),
            stringify!($b),
            __l,
            __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_honoured(a in 3usize..9, b in -2i32..2) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2..2).contains(&b));
        }

        #[test]
        fn vec_lengths_honoured(v in crate::collection::vec(0f32..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn prop_map_applies(x in (0usize..4).prop_map(|i| i * 10)) {
            prop_assert!(x % 10 == 0 && x < 40);
        }
    }

    #[test]
    fn case_zero_is_minimum() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic("t", 0);
        assert_eq!((5usize..9).sample(&mut rng), 5);
        assert!(!crate::bool::ANY.sample(&mut rng));
    }
}
