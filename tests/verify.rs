//! Output-integrity properties (ISSUE 10): the Freivalds check's
//! false-negative bound over corruption magnitudes, and verdict
//! determinism — same inputs, same verdict, bit-for-bit, regardless of
//! how many threads computed the output or run the check.
//!
//! Always-compiled (no `faultinject` needed): these drive
//! [`autogemm::verify::verify_output`] directly on corrupted oracle
//! products rather than injecting faults into the drivers; the injected
//! end-to-end story lives in `tests/chaos.rs`.

use autogemm::supervisor::GemmOptions;
use autogemm::verify::{verify_output, FREIVALDS_ROUNDS};
use autogemm::{AutoGemm, GemmError, VerifyPolicy};
use autogemm_arch::ChipSpec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Exactly-representable operands (integers in [-15, 15] scaled by
/// powers of two), the repo's standard oracle-friendly generator.
fn data(m: usize, n: usize, k: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
    let f = |i: usize, s: u32| {
        (((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 31) as f32 - 15.0
    };
    let a = (0..m * k).map(|i| f(i, seed) * 0.125).collect();
    let b = (0..k * n).map(|i| f(i, seed ^ 0x7e57) * 0.25).collect();
    (a, b)
}

fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            for j in 0..n {
                c[i * n + j] += av * b[p * n + j];
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// False-negative bound, single-cell corruptions: a ±1 probe vector
    /// carries any lone perturbation straight into the row residual
    /// (`|residual| = |delta|`, sign-independent), so every corruption
    /// above the rounding tolerance is caught — across six orders of
    /// magnitude, any cell, any shape in the envelope, and always
    /// within the [`FREIVALDS_ROUNDS`] budget.
    #[test]
    fn corruption_above_tolerance_is_always_caught(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..13,
        cell in 0usize..4096,
        exp in 0i32..7,
        negative in proptest::bool::ANY,
        seed in 0u32..1000,
    ) {
        let (a, b) = data(m, n, k, seed);
        let mut c = naive(m, n, k, &a, &b);
        let delta = if negative { -(10f32.powi(exp)) } else { 10f32.powi(exp) };
        c[cell % (m * n)] += delta;
        match verify_output(m, n, k, &a, &b, &c) {
            Err(GemmError::IntegrityViolation { check, round, max_residual }) => {
                prop_assert_eq!(check, "freivalds");
                prop_assert!(round < FREIVALDS_ROUNDS);
                // The residual carries the corruption magnitude (±
                // accumulated rounding noise far below it).
                prop_assert!(
                    max_residual > f64::from(delta.abs()) * 0.5,
                    "residual {} vs delta {}", max_residual, delta
                );
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "{m}x{n}x{k} delta {delta}: corruption missed: {other:?}"
                )));
            }
        }
    }

    /// Zero false positives: clean oracle products pass at every shape
    /// in the envelope (the tolerance really does cover `f32` GEMM
    /// accumulation error).
    #[test]
    fn clean_products_never_false_positive(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..13,
        seed in 0u32..1000,
    ) {
        let (a, b) = data(m, n, k, seed);
        let c = naive(m, n, k, &a, &b);
        prop_assert!(verify_output(m, n, k, &a, &b, &c).is_ok());
    }
}

/// The multi-round rationale made concrete: two opposite corruptions in
/// one row cancel in a round whose probe signs agree on both columns
/// (exact-arithmetic miss probability 1/2 per round), and the next
/// round's independent signs break the cancellation. Over all column
/// pairs of this shape, some pair must be caught only in round 1 —
/// i.e. the second round genuinely tightens the false-negative bound.
#[test]
fn adversarial_cancellation_is_caught_by_a_later_round() {
    let (m, n, k) = (8usize, 20usize, 10usize);
    let (a, b) = data(m, n, k, 42);
    let clean = naive(m, n, k, &a, &b);
    let mut round1_catches = 0u32;
    let mut caught = 0u32;
    let mut pairs = 0u32;
    for j1 in 0..n {
        for j2 in (j1 + 1)..n {
            pairs += 1;
            let mut c = clean.clone();
            c[3 * n + j1] += 1.0e3;
            c[3 * n + j2] -= 1.0e3;
            match verify_output(m, n, k, &a, &b, &c) {
                Err(GemmError::IntegrityViolation { round, .. }) => {
                    caught += 1;
                    if round == 1 {
                        round1_catches += 1;
                    }
                }
                Ok(()) => {} // cancelled in every round: the 2^-rounds tail
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
    }
    assert!(round1_catches > 0, "no pair needed round 1 ({caught}/{pairs} caught)");
    // The probabilistic bound: ~3/4 of pairs caught with 2 rounds. Allow
    // a wide band; the point is the tail is small, not its exact size.
    assert!(
        f64::from(caught) > 0.5 * f64::from(pairs),
        "detection rate collapsed: {caught}/{pairs}"
    );
}

/// Same seed, same verdict: the probe vectors are a pure function of
/// `(m, n, k, round)`, so concurrent verifications of the same buffers
/// return bit-identical verdicts — no time, RNG or scheduling leaks in.
#[test]
fn verdict_is_deterministic_across_concurrent_checkers() {
    let (m, n, k) = (24usize, 20usize, 12usize);
    let (a, b) = data(m, n, k, 7);
    let mut c = naive(m, n, k, &a, &b);
    c[5 * n + 3] += 1.0e3;
    let (a, b, c) = (&a, &b, &c);
    let verdicts: Vec<_> = std::thread::scope(|s| {
        (0..8)
            .map(|_| s.spawn(move || verify_output(m, n, k, a, b, c)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("checker panicked"))
            .collect()
    });
    let first = &verdicts[0];
    assert!(first.is_err());
    for v in &verdicts {
        assert_eq!(v, first, "verdicts diverged across threads");
    }
}

/// Engine-level determinism: the verified engine path produces the same
/// (passing) verdict at 1, 2 and 8 threads — thread count changes the
/// schedule, never the attested output or the probe vectors.
#[test]
fn engine_verification_passes_at_every_thread_count() {
    let engine = AutoGemm::new(ChipSpec::graviton2()).with_verify_policy(VerifyPolicy::Always);
    let (m, n, k) = (40usize, 36usize, 24usize);
    let (a, b) = data(m, n, k, 11);
    let want = naive(m, n, k, &a, &b);
    for threads in [1usize, 2, 8] {
        let mut c = vec![0.0f32; m * n];
        engine
            .try_gemm_opts(m, n, k, &a, &b, &mut c, &GemmOptions::new().threads(threads))
            .unwrap_or_else(|e| panic!("t{threads}: verified run flagged: {e:?}"));
        assert_eq!(c, want, "t{threads}: exact-representable data must match the oracle");
    }
}
