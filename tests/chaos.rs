//! Chaos suite: seeded deterministic fault injection (the `faultinject`
//! feature) swept across injection sites, actions and thread counts.
//!
//! The acceptance bar (ISSUE 4): every injection either comes back as a
//! structured [`GemmError`] or the run recovers with a result matching
//! the scalar oracle — no abort, no deadlock, no partial-tile garbage.
//! Only one `FaultPlan` can be armed at a time, so every test serializes
//! through [`chaos_lock`].
#![cfg(feature = "faultinject")]

use autogemm::faultinject::{arm, FaultAction, FaultPlan, FaultSite, Trigger};
use autogemm::supervisor::{
    BreakerConfig, BreakerPath, BreakerState, CancelToken, GemmOptions, WatchdogConfig,
};
use autogemm::{AutoGemm, GemmError, Runtime};
use autogemm_arch::ChipSpec;
use autogemm_baselines::naive::{max_rel_error, naive_gemm};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};
use std::time::Duration;

/// An engine whose circuit breaker never opens: tests that deliberately
/// fault the same path many times in a row use this to observe the raw
/// (pre-quarantine) fault behavior.
fn engine_unbroken() -> AutoGemm {
    AutoGemm::new(ChipSpec::graviton2()).with_breaker_config(BreakerConfig {
        fail_threshold: u32::MAX,
        open_cooldown: 1,
        close_after: 1,
    })
}

/// Serializes tests that arm the global fault plan; also silences the
/// default panic hook for the intentional "injected fault" panics so the
/// suite's output stays readable.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

fn data(m: usize, n: usize, k: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
    let f = |i: usize, s: u32| {
        (((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 31) as f32 - 15.0
    };
    let a = (0..m * k).map(|i| f(i, seed) * 0.125).collect();
    let b = (0..k * n).map(|i| f(i, seed ^ 0xfa17) * 0.25).collect();
    (a, b)
}

const SHAPE: (usize, usize, usize) = (40, 36, 24);
const THREADS: [usize; 3] = [1, 2, 8];

fn oracle(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut want = vec![0.0f32; m * n];
    naive_gemm(m, n, k, a, b, &mut want);
    want
}

#[test]
fn pack_alloc_degrade_recovers_bit_identical() {
    let _g = chaos_lock();
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 1);
    for threads in THREADS {
        // Fault-free reference run first (same plan, same kernels).
        let mut c_ref = vec![0.0f32; m * n];
        engine.try_gemm_threaded(m, n, k, &a, &b, &mut c_ref, threads).unwrap();

        let guard =
            arm(FaultPlan::single(FaultSite::PackAlloc, FaultAction::Degrade, Trigger::Nth(1)));
        let mut c = vec![0.0f32; m * n];
        engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads).unwrap();
        assert!(guard.fired() >= 1, "t{threads}: degrade never fired");
        drop(guard);
        // Degraded packing only changes where the panels live, never the
        // arithmetic: the recovery must be bit-identical.
        assert_eq!(c, c_ref, "t{threads}: degraded run diverged");
    }
}

#[test]
fn pack_alloc_degrade_is_recorded_in_the_report() {
    let _g = chaos_lock();
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 2);
    let guard =
        arm(FaultPlan::single(FaultSite::PackAlloc, FaultAction::Degrade, Trigger::EveryKth(1)));
    let mut c = vec![0.0f32; m * n];
    let report = engine.try_gemm_traced(m, n, k, &a, &b, &mut c, 2).unwrap();
    assert!(guard.fired() >= 2, "both pack phases should degrade");
    assert!(
        report.fallbacks.pool_packs >= 2,
        "pool_packs = {} not recorded",
        report.fallbacks.pool_packs
    );
    assert!(max_rel_error(&c, &oracle(m, n, k, &a, &b)) < 1e-5);
}

#[test]
fn pack_alloc_fail_is_a_structured_error_with_c_untouched() {
    let _g = chaos_lock();
    // Six consecutive faulting calls: quarantine must not kick in.
    let engine = engine_unbroken();
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 3);
    // Nth(1) hits the pack-A phase, Nth(2) the pack-B phase.
    for (nth, phase) in [(1, "pack A"), (2, "pack B")] {
        for threads in THREADS {
            let guard =
                arm(FaultPlan::single(FaultSite::PackAlloc, FaultAction::Fail, Trigger::Nth(nth)));
            let sentinel: Vec<f32> = (0..m * n).map(|i| i as f32 - 7.0).collect();
            let mut c = sentinel.clone();
            let e = engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads).unwrap_err();
            assert!(guard.fired() >= 1);
            drop(guard);
            match &e {
                GemmError::AllocFailed { phase: got } => {
                    assert_eq!(*got, phase, "nth {nth} t{threads}")
                }
                other => panic!("nth {nth} t{threads}: expected AllocFailed, got {other:?}"),
            }
            // Packing precedes every C write: untouched-C holds.
            assert_eq!(c, sentinel, "nth {nth} t{threads}: C was touched");
        }
    }
}

#[test]
fn pack_alloc_panic_is_contained() {
    let _g = chaos_lock();
    let engine = engine_unbroken();
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 4);
    for threads in THREADS {
        let guard =
            arm(FaultPlan::single(FaultSite::PackAlloc, FaultAction::Panic, Trigger::Nth(1)));
        let sentinel: Vec<f32> = vec![9.25; m * n];
        let mut c = sentinel.clone();
        let e = engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads).unwrap_err();
        assert!(guard.fired() >= 1);
        drop(guard);
        match &e {
            GemmError::WorkerPanicked { detail, .. } => {
                assert!(detail.contains("injected fault"), "t{threads}: {detail}")
            }
            other => panic!("t{threads}: expected WorkerPanicked, got {other:?}"),
        }
        assert_eq!(c, sentinel, "t{threads}: C was touched before the run phase");
    }
}

#[test]
fn kernel_dispatch_faults_reroute_to_the_scalar_oracle() {
    let _g = chaos_lock();
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 5);
    let want = oracle(m, n, k, &a, &b);
    let fused = autogemm::simd::SimdBackend::detect().fused();
    // Degrade and Fail both mean "don't trust the SIMD dispatch": the
    // whole run reroutes to the scalar reference kernels and still
    // completes — dispatch failure never fails the GEMM.
    for action in [FaultAction::Degrade, FaultAction::Fail] {
        for threads in THREADS {
            let mut c_ref = vec![0.0f32; m * n];
            engine.try_gemm_threaded(m, n, k, &a, &b, &mut c_ref, threads).unwrap();

            let guard = arm(FaultPlan::single(FaultSite::KernelDispatch, action, Trigger::Nth(1)));
            let mut c = vec![0.0f32; m * n];
            let report = engine.try_gemm_traced(m, n, k, &a, &b, &mut c, threads).unwrap();
            assert!(guard.fired() >= 1, "{action:?} t{threads}: never fired");
            drop(guard);
            assert!(report.fallbacks.scalar_kernels >= 1, "{action:?} t{threads}");
            assert!(max_rel_error(&c, &want) < 1e-5, "{action:?} t{threads}: scalar reroute wrong");
            if fused {
                // Fused backends are bit-compatible with the mul_add
                // scalar reference, so recovery is bit-identical.
                assert_eq!(c, c_ref, "{action:?} t{threads}: not bit-identical");
            }
        }
    }
}

#[test]
fn worker_startup_panic_poisons_the_run_without_deadlock() {
    let _g = chaos_lock();
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 6);
    for threads in THREADS {
        // Nth(1): the first worker dies; survivors must drain and exit.
        let guard =
            arm(FaultPlan::single(FaultSite::WorkerStartup, FaultAction::Panic, Trigger::Nth(1)));
        let mut c = vec![0.0f32; m * n];
        let e = engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads).unwrap_err();
        assert_eq!(guard.fired(), 1, "t{threads}");
        drop(guard);
        match &e {
            GemmError::WorkerPanicked { detail, .. } => {
                assert!(detail.contains("injected fault"), "t{threads}: {detail}")
            }
            other => panic!("t{threads}: expected WorkerPanicked, got {other:?}"),
        }
        // The engine (pool included) survives a poisoned run.
        let mut c_after = vec![0.0f32; m * n];
        engine.try_gemm_threaded(m, n, k, &a, &b, &mut c_after, threads).unwrap();
        assert!(max_rel_error(&c_after, &oracle(m, n, k, &a, &b)) < 1e-5, "t{threads}");
    }
    // EveryKth(1): every worker dies at startup — still a clean error.
    let guard =
        arm(FaultPlan::single(FaultSite::WorkerStartup, FaultAction::Panic, Trigger::EveryKth(1)));
    let mut c = vec![0.0f32; m * n];
    let e = engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 8).unwrap_err();
    assert!(matches!(e, GemmError::WorkerPanicked { .. }), "{e:?}");
    assert!(guard.fired() >= 1);
}

#[test]
fn nth_and_every_kth_triggers_are_deterministic_across_calls() {
    let _g = chaos_lock();
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 7);
    let want = oracle(m, n, k, &a, &b);

    // Single-threaded runs probe WorkerStartup exactly once per call, so
    // EveryKth(2) fails exactly the 2nd and 4th of four calls.
    let guard =
        arm(FaultPlan::single(FaultSite::WorkerStartup, FaultAction::Panic, Trigger::EveryKth(2)));
    let mut outcomes = Vec::new();
    for _ in 0..4 {
        let mut c = vec![0.0f32; m * n];
        let r = engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 1);
        if r.is_ok() {
            assert!(max_rel_error(&c, &want) < 1e-5);
        }
        outcomes.push(r.is_ok());
    }
    assert_eq!(outcomes, [true, false, true, false]);
    assert_eq!(guard.fired(), 2);
    drop(guard);

    // Nth(3) is a one-shot: only the 3rd call fails.
    let guard =
        arm(FaultPlan::single(FaultSite::WorkerStartup, FaultAction::Panic, Trigger::Nth(3)));
    let mut outcomes = Vec::new();
    for _ in 0..4 {
        let mut c = vec![0.0f32; m * n];
        outcomes.push(engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 1).is_ok());
    }
    assert_eq!(outcomes, [true, true, false, true]);
    assert_eq!(guard.fired(), 1);
}

#[test]
fn seeded_sweep_is_clean_error_or_correct_recovery() {
    let _g = chaos_lock();
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 8);
    let want = oracle(m, n, k, &a, &b);
    for seed in 0..32u64 {
        let plan = FaultPlan::seeded(seed);
        let guard = arm(plan.clone());
        for threads in THREADS {
            let mut c = vec![0.0f32; m * n];
            match engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads) {
                // Recovery (or a trigger that never matched): the result
                // must match the oracle.
                Ok(()) => {
                    let err = max_rel_error(&c, &want);
                    assert!(err < 1e-5, "seed {seed} t{threads} ({plan:?}): rel err {err}");
                }
                // Failure: structured, from the expected family.
                Err(e) => assert!(
                    matches!(e, GemmError::WorkerPanicked { .. } | GemmError::AllocFailed { .. }),
                    "seed {seed} t{threads} ({plan:?}): unexpected error {e:?}"
                ),
            }
        }
        drop(guard);
        // Disarmed follow-up: the engine is always reusable.
        let mut c = vec![0.0f32; m * n];
        engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 2).unwrap();
        assert!(max_rel_error(&c, &want) < 1e-5, "seed {seed}: engine poisoned after sweep");
    }
}

#[test]
fn batch_and_prepacked_paths_contain_worker_panics() {
    let _g = chaos_lock();
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = (10usize, 12usize, 8usize);
    let (a, b) = data(m, n, k, 9);

    // Batch: items run through the same probed pooled driver.
    let mut batch = autogemm::GemmBatch::new(m, n, k);
    for _ in 0..6 {
        batch.push(&a, &b);
    }
    let guard =
        arm(FaultPlan::single(FaultSite::WorkerStartup, FaultAction::Panic, Trigger::Nth(1)));
    let mut c = vec![0.0f32; 6 * m * n];
    let e = engine.try_gemm_batch(&batch, &mut c, 3).unwrap_err();
    match &e {
        GemmError::InBatch { index, source } => {
            assert!(*index < 6, "index {index} out of range");
            assert!(matches!(**source, GemmError::WorkerPanicked { .. }), "{source:?}");
        }
        other => panic!("expected InBatch(WorkerPanicked), got {other:?}"),
    }
    drop(guard);

    // Prepacked offline path.
    let plan = engine.plan(m, n, k);
    let packed = autogemm::PackedB::new(&plan, &b);
    let guard =
        arm(FaultPlan::single(FaultSite::WorkerStartup, FaultAction::Panic, Trigger::Nth(1)));
    let mut c = vec![0.0f32; m * n];
    let e = autogemm::try_gemm_prepacked(&plan, &a, &packed, &mut c, 2).unwrap_err();
    assert!(matches!(e, GemmError::WorkerPanicked { .. }), "{e:?}");
    assert!(guard.fired() >= 1);
}

// ---------------------------------------------------------------------------
// ISSUE 5: cancellation × fault sites × threads, watchdog, circuit breaker
// ---------------------------------------------------------------------------

/// Clean follow-up call: the engine must be fully reusable (and correct)
/// after any supervised stop, with no pool buffers leaked.
fn assert_recovered(engine: &AutoGemm, threads: usize, ctx: &str) {
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 99);
    let want = oracle(m, n, k, &a, &b);
    assert_eq!(engine.panel_pool().outstanding(), 0, "{ctx}: pool buffers leaked");
    let mut c = vec![0.0f32; m * n];
    engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads).unwrap();
    assert!(max_rel_error(&c, &want) < 1e-5, "{ctx}: engine not reusable");
}

#[test]
fn cancellation_sweep_across_fault_sites_and_threads() {
    let _g = chaos_lock();
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 10);
    // A pre-cancelled token stops the run at the very first checkpoint
    // ("pack A", zero units done, C untouched) no matter which fault is
    // armed alongside it — a cancelled run never counts toward the
    // breaker, and its buffers always come back to the pool.
    let faults: [Option<(FaultSite, FaultAction)>; 3] = [
        None,
        Some((FaultSite::PackAlloc, FaultAction::Degrade)),
        Some((FaultSite::KernelDispatch, FaultAction::Degrade)),
    ];
    for threads in THREADS {
        for fault in faults {
            let ctx = format!("t{threads} {fault:?}");
            let guard =
                fault.map(|(site, act)| arm(FaultPlan::single(site, act, Trigger::EveryKth(1))));
            let tok = CancelToken::new();
            tok.cancel();
            let sentinel: Vec<f32> = vec![4.5; m * n];
            let mut c = sentinel.clone();
            let opts = GemmOptions::new().threads(threads).cancel(tok.clone());
            let e = engine.try_gemm_opts(m, n, k, &a, &b, &mut c, &opts).unwrap_err();
            match &e {
                GemmError::Cancelled { phase, blocks_done, blocks_total } => {
                    assert_eq!(*phase, "pack A", "{ctx}");
                    assert_eq!(*blocks_done, 0, "{ctx}");
                    assert!(*blocks_total > 0, "{ctx}");
                }
                other => panic!("{ctx}: expected Cancelled, got {other:?}"),
            }
            assert_eq!(c, sentinel, "{ctx}: cancelled before kernel, C must be untouched");
            drop(guard);
            // Reset makes the same token reusable for the recovery call.
            tok.reset();
            let mut c2 = vec![0.0f32; m * n];
            engine.try_gemm_opts(m, n, k, &a, &b, &mut c2, &opts).unwrap();
            assert!(max_rel_error(&c2, &oracle(m, n, k, &a, &b)) < 1e-5, "{ctx}");
            assert_recovered(&engine, threads, &ctx);
        }
    }
}

#[test]
fn deadline_and_token_interrupt_a_wedged_kernel_mid_run() {
    let _g = chaos_lock();
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 11);
    // A Stall wedge pins every worker at its first kernel-block claim
    // (cap 10 s — only supervision can break it early); both cancel
    // sources must cut through the wedge within the block budget.
    for threads in THREADS {
        // (1) Deadline.
        let guard = arm(FaultPlan::single(
            FaultSite::WorkerHeartbeat,
            FaultAction::Stall(10_000),
            Trigger::EveryKth(1),
        ));
        let mut c = vec![0.0f32; m * n];
        let t0 = std::time::Instant::now();
        let e = engine
            .try_gemm_deadline(m, n, k, &a, &b, &mut c, threads, Duration::from_millis(150))
            .unwrap_err();
        assert!(t0.elapsed() < Duration::from_secs(8), "t{threads}: deadline did not break wedge");
        match &e {
            GemmError::Cancelled { phase, blocks_done, blocks_total } => {
                assert_eq!(*phase, "kernel", "t{threads}");
                assert!(blocks_done < blocks_total, "t{threads}: {blocks_done}/{blocks_total}");
            }
            other => panic!("t{threads}: expected Cancelled(kernel), got {other:?}"),
        }
        drop(guard);
        assert_recovered(&engine, threads, &format!("deadline t{threads}"));

        // (2) External token, cancelled from another thread mid-wedge.
        let guard = arm(FaultPlan::single(
            FaultSite::WorkerHeartbeat,
            FaultAction::Stall(10_000),
            Trigger::EveryKth(1),
        ));
        let tok = CancelToken::new();
        let canceller = {
            let tok = tok.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(40));
                tok.cancel();
            })
        };
        let mut c = vec![0.0f32; m * n];
        let t0 = std::time::Instant::now();
        let opts = GemmOptions::new().threads(threads).cancel(tok);
        let e = engine.try_gemm_opts(m, n, k, &a, &b, &mut c, &opts).unwrap_err();
        canceller.join().unwrap();
        assert!(t0.elapsed() < Duration::from_secs(8), "t{threads}: token did not break wedge");
        assert!(
            matches!(e, GemmError::Cancelled { phase: "kernel", .. }),
            "t{threads}: expected Cancelled(kernel), got {e:?}"
        );
        drop(guard);
        assert_recovered(&engine, threads, &format!("token t{threads}"));
    }
}

#[test]
fn watchdog_detects_a_stalled_worker_and_reports_heartbeats() {
    let _g = chaos_lock();
    // The watchdog verdict itself must not be masked by quarantine.
    let engine = engine_unbroken();
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 12);
    let watchdog =
        WatchdogConfig { quiescence: Duration::from_millis(80), poll: Duration::from_millis(5) };
    for threads in THREADS {
        // No deadline and no token: only the watchdog can stop this run.
        let guard = arm(FaultPlan::single(
            FaultSite::WorkerHeartbeat,
            FaultAction::Stall(10_000),
            Trigger::EveryKth(1),
        ));
        let mut c = vec![0.0f32; m * n];
        let t0 = std::time::Instant::now();
        let opts = GemmOptions::new().threads(threads).watchdog(watchdog);
        let e = engine.try_gemm_opts(m, n, k, &a, &b, &mut c, &opts).unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(8),
            "t{threads}: watchdog verdict took {:?}",
            t0.elapsed()
        );
        match &e {
            GemmError::Stalled { phase, quiescence_ms, heartbeats } => {
                assert_eq!(*phase, "kernel", "t{threads}");
                assert_eq!(*quiescence_ms, 80, "t{threads}");
                // One counter per engaged worker; oversubscribed requests
                // are clamped to the runtime's capacity.
                let engaged = threads.min(engine.runtime().capacity());
                assert_eq!(heartbeats.len(), engaged, "t{threads}: one counter per worker");
            }
            other => panic!("t{threads}: expected Stalled, got {other:?}"),
        }
        assert!(guard.fired() >= 1, "t{threads}");
        drop(guard);
        assert_recovered(&engine, threads, &format!("watchdog t{threads}"));
    }
}

// ---------------------------------------------------------------------------
// ISSUE 7: the worker-pool submission site (FaultSite::PoolSubmit)
// ---------------------------------------------------------------------------

#[test]
fn pool_submit_degrade_drains_inline_bit_identical() {
    let _g = chaos_lock();
    let engine = engine_unbroken();
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 14);
    for threads in [2, 8] {
        // Fault-free reference run (pooled submission).
        let mut c_ref = vec![0.0f32; m * n];
        engine.try_gemm_threaded(m, n, k, &a, &b, &mut c_ref, threads).unwrap();

        let guard =
            arm(FaultPlan::single(FaultSite::PoolSubmit, FaultAction::Degrade, Trigger::Nth(1)));
        let mut c = vec![0.0f32; m * n];
        let report = engine.try_gemm_traced(m, n, k, &a, &b, &mut c, threads).unwrap();
        assert!(guard.fired() >= 1, "t{threads}: degrade never fired");
        drop(guard);
        // The caller drained every section alone; section bodies are
        // slot-agnostic cursor drains, so the result is bit-identical.
        assert_eq!(c, c_ref, "t{threads}: inline drain diverged");
        assert!(
            report.fallbacks.inline_drains >= 1,
            "t{threads}: inline_drains = {} not recorded",
            report.fallbacks.inline_drains
        );
    }
}

#[test]
fn pool_submit_fail_is_a_structured_error_with_c_untouched() {
    let _g = chaos_lock();
    let engine = engine_unbroken();
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 15);
    for threads in [2, 8] {
        let guard =
            arm(FaultPlan::single(FaultSite::PoolSubmit, FaultAction::Fail, Trigger::Nth(1)));
        let sentinel: Vec<f32> = (0..m * n).map(|i| i as f32 + 0.5).collect();
        let mut c = sentinel.clone();
        let e = engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads).unwrap_err();
        assert!(guard.fired() >= 1, "t{threads}");
        drop(guard);
        match &e {
            GemmError::AllocFailed { phase } => assert_eq!(*phase, "pool submit", "t{threads}"),
            other => panic!("t{threads}: expected AllocFailed(pool submit), got {other:?}"),
        }
        // The submit probe precedes every C write.
        assert_eq!(c, sentinel, "t{threads}: C was touched");
        assert_recovered(&engine, threads, &format!("pool_submit fail t{threads}"));
    }
}

#[test]
fn pool_submit_panic_is_contained_and_the_pool_survives() {
    let _g = chaos_lock();
    let engine = engine_unbroken();
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 16);
    let rt = engine.runtime().clone();
    let workers = rt.stats().workers as usize;
    for threads in [2, 8] {
        let guard =
            arm(FaultPlan::single(FaultSite::PoolSubmit, FaultAction::Panic, Trigger::Nth(1)));
        let mut c = vec![0.0f32; m * n];
        let e = engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads).unwrap_err();
        assert!(guard.fired() >= 1, "t{threads}");
        drop(guard);
        match &e {
            GemmError::WorkerPanicked { detail, .. } => {
                assert!(detail.contains("injected fault"), "t{threads}: {detail}")
            }
            other => panic!("t{threads}: expected WorkerPanicked, got {other:?}"),
        }
        // A poisoned submission never costs a pool worker.
        assert_eq!(rt.alive_workers(), workers, "t{threads}: pool worker leaked");
        assert_recovered(&engine, threads, &format!("pool_submit panic t{threads}"));
    }
}

#[test]
fn pool_submit_probe_never_fires_single_threaded() {
    let _g = chaos_lock();
    let engine = engine_unbroken();
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 17);
    let guard =
        arm(FaultPlan::single(FaultSite::PoolSubmit, FaultAction::Fail, Trigger::EveryKth(1)));
    let mut c = vec![0.0f32; m * n];
    engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 1).unwrap();
    assert_eq!(guard.fired(), 0, "single-threaded calls must not consult the pool gate");
    drop(guard);
    assert!(max_rel_error(&c, &oracle(m, n, k, &a, &b)) < 1e-5);
}

#[test]
fn dedicated_pool_survives_poisoned_submissions_and_stays_reusable() {
    let _g = chaos_lock();
    let rt = Runtime::with_workers(1);
    let engine = engine_unbroken().with_runtime(rt.clone());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 19);
    let workers = rt.stats().workers as usize;

    // Every worker (caller included) panics at its block-loop entry.
    let guard =
        arm(FaultPlan::single(FaultSite::WorkerStartup, FaultAction::Panic, Trigger::EveryKth(1)));
    let mut c = vec![0.0f32; m * n];
    let e = engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 2).unwrap_err();
    assert!(matches!(e, GemmError::WorkerPanicked { .. }), "{e:?}");
    drop(guard);

    // The panic was contained per-submission: the long-lived pool worker
    // is still parked and the next call reuses it cleanly.
    assert_eq!(rt.alive_workers(), workers, "poisoned submission killed a pool worker");
    let submissions_before = rt.stats().submissions;
    let mut c = vec![0.0f32; m * n];
    engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 2).unwrap();
    assert!(max_rel_error(&c, &oracle(m, n, k, &a, &b)) < 1e-5);
    assert!(rt.stats().submissions > submissions_before, "reuse call must go through the pool");
    assert_eq!(rt.alive_workers(), workers);
}

#[test]
fn pool_submit_breaker_trips_and_reroutes_to_inline_drains() {
    let _g = chaos_lock();
    let engine = AutoGemm::new(ChipSpec::graviton2()).with_breaker_config(BreakerConfig {
        fail_threshold: 2,
        open_cooldown: 2,
        close_after: 1,
    });
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 18);
    let want = oracle(m, n, k, &a, &b);
    let path = BreakerPath::PoolSubmit;
    let threads = 2;

    let guard =
        arm(FaultPlan::single(FaultSite::PoolSubmit, FaultAction::Degrade, Trigger::EveryKth(1)));
    // Two consecutive degraded submissions trip the path.
    for call in 0..2 {
        let mut c = vec![0.0f32; m * n];
        engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads).unwrap();
        assert!(max_rel_error(&c, &want) < 1e-5, "call {call}");
    }
    assert_eq!(engine.breaker().state(path), BreakerState::Open);

    // Open: the probe is skipped, the reroute is recorded, and the call
    // still completes correctly on inline drains.
    let fired_before = guard.fired();
    let mut c = vec![0.0f32; m * n];
    let report = engine.try_gemm_traced(m, n, k, &a, &b, &mut c, threads).unwrap();
    assert_eq!(guard.fired(), fired_before, "probe must be skipped while Open");
    assert!(report.fallbacks.breaker_reroutes >= 1);
    assert!(max_rel_error(&c, &want) < 1e-5);
    drop(guard);

    // Disarmed: the half-open probe is clean and the pool path closes.
    let mut c = vec![0.0f32; m * n];
    engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads).unwrap();
    assert_eq!(engine.breaker().state(path), BreakerState::Closed);
    assert!(max_rel_error(&c, &want) < 1e-5);
}

#[test]
fn breaker_trips_reroutes_half_opens_and_recovers_deterministically() {
    let _g = chaos_lock();
    let engine = AutoGemm::new(ChipSpec::graviton2()).with_breaker_config(BreakerConfig {
        fail_threshold: 2,
        open_cooldown: 2,
        close_after: 1,
    });
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 13);
    let want = oracle(m, n, k, &a, &b);
    let threads = 2;
    let path = BreakerPath::SimdDispatch;
    let run = |c: &mut Vec<f32>| {
        c.iter_mut().for_each(|x| *x = 0.0);
        engine.try_gemm_traced(m, n, k, &a, &b, c, threads).unwrap()
    };
    let mut c = vec![0.0f32; m * n];

    // Pre-fault reference run (bit-compare target for the recovery).
    let r0 = run(&mut c);
    assert!(r0.health.all_closed(), "fresh engine must be healthy");
    let c_ref = c.clone();

    let guard = arm(FaultPlan::single(
        FaultSite::KernelDispatch,
        FaultAction::Degrade,
        Trigger::EveryKth(1),
    ));
    // Call 1: fault → per-call scalar reroute, breaker still Closed.
    let r1 = run(&mut c);
    assert!(r1.fallbacks.scalar_kernels >= 1);
    assert!(r1.health.transitions.is_empty(), "{:?}", r1.health.transitions);
    assert_eq!(engine.breaker().state(path), BreakerState::Closed);
    assert!(max_rel_error(&c, &want) < 1e-5, "faulting call 1 must still be correct");

    // Call 2: second consecutive fault → trip.
    let r2 = run(&mut c);
    assert_eq!(r2.health.transitions, vec!["simd_dispatch: closed -> open".to_string()]);
    assert_eq!(engine.breaker().state(path), BreakerState::Open);
    assert_eq!(r2.health.path("simd_dispatch").unwrap().trips, 1);
    assert!(max_rel_error(&c, &want) < 1e-5);

    // Call 3: Open → quarantined. The SIMD probe is skipped entirely
    // (the armed fault cannot fire) and the run is rerouted to scalar.
    let fired_before = guard.fired();
    let r3 = run(&mut c);
    assert_eq!(guard.fired(), fired_before, "probe must be skipped while Open");
    assert!(r3.fallbacks.breaker_reroutes >= 1);
    assert_eq!(engine.breaker().state(path), BreakerState::Open);
    assert!(max_rel_error(&c, &want) < 1e-5, "rerouted call must be correct");
    drop(guard);

    // Call 4: cooldown served → HalfOpen probe; the fault is disarmed,
    // the probe is clean, and one clean probe closes the breaker.
    let r4 = run(&mut c);
    assert_eq!(
        r4.health.transitions,
        vec![
            "simd_dispatch: open -> half_open".to_string(),
            "simd_dispatch: half_open -> closed".to_string(),
        ]
    );
    assert_eq!(engine.breaker().state(path), BreakerState::Closed);
    assert!(max_rel_error(&c, &want) < 1e-5);

    // Call 5: fast path restored — no scalar fallback, no reroute, and
    // bit-identical to the pre-fault reference run.
    let r5 = run(&mut c);
    assert_eq!(r5.fallbacks.scalar_kernels, 0, "SIMD must be restored after close");
    assert_eq!(r5.fallbacks.breaker_reroutes, 0);
    assert!(r5.health.all_closed());
    assert_eq!(c, c_ref, "restored fast path must match the pre-fault run");
}

#[test]
fn resilient_retries_share_one_deadline_budget_instead_of_resetting_it() {
    let _g = chaos_lock();
    // Quarantine off so every rung really re-enters the stalling path.
    let engine = engine_unbroken();
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 41);
    // Every rung stalls; the watchdog (80 ms quiescence) converts each
    // stall into a retryable `Stalled`. With a single 200 ms budget the
    // ladder must run out of deadline across rungs and surface
    // `Cancelled` — the buggy behavior was three *full* 200 ms budgets,
    // ending in `Stalled` after ~3x the requested deadline.
    let guard = arm(FaultPlan::single(
        FaultSite::WorkerHeartbeat,
        FaultAction::Stall(10_000),
        Trigger::EveryKth(1),
    ));
    let watchdog =
        WatchdogConfig { quiescence: Duration::from_millis(80), poll: Duration::from_millis(5) };
    let opts =
        GemmOptions::new().threads(2).watchdog(watchdog).deadline(Duration::from_millis(200));
    let mut c = vec![0.0f32; m * n];
    let t0 = std::time::Instant::now();
    let e = engine.try_gemm_resilient(m, n, k, &a, &b, &mut c, &opts).unwrap_err();
    let elapsed = t0.elapsed();
    drop(guard);
    assert!(
        matches!(e, GemmError::Cancelled { .. }),
        "later rungs must inherit the *remaining* budget and stop on it; got {e:?}"
    );
    // Generous bound, but far below three full watchdog/deadline cycles.
    assert!(elapsed < Duration::from_secs(2), "ladder overran its shared budget: {elapsed:?}");
}

#[test]
fn recoverable_faults_under_queue_pressure_stay_oracle_identical() {
    use autogemm::{GemmService, ServiceConfig, ShedPolicy, TenantQuota};
    let _g = chaos_lock();
    let cfg = ServiceConfig {
        queue_depth: 16,
        max_in_flight: 2,
        shed: ShedPolicy { enabled: false, ..ShedPolicy::default() },
        ..ServiceConfig::default()
    };
    let svc = GemmService::new(ChipSpec::graviton2(), cfg);
    let tenant = svc.add_tenant("chaos", TenantQuota { threads: 4, ..TenantQuota::default() });
    // Degrade is the recoverable action: packing falls back to the
    // transient (non-pooled) buffer and the call must still be correct.
    let guard =
        arm(FaultPlan::single(FaultSite::PackAlloc, FaultAction::Degrade, Trigger::EveryKth(2)));
    let (m, n, k) = SHAPE;
    let svc = &svc;
    let tenant = &tenant;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|t| {
                s.spawn(move || {
                    for i in 0..4u32 {
                        let (a, b) = data(m, n, k, 500 + t * 16 + i);
                        let mut c = vec![0.0f32; m * n];
                        svc.submit(tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new())
                            .unwrap_or_else(|e| panic!("degrade must recover, got {e:?}"));
                        let err = max_rel_error(&c, &oracle(m, n, k, &a, &b));
                        assert!(err < 1e-5, "worker {t} call {i}: rel err {err}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no submitter panicked");
        }
    });
    assert!(guard.fired() > 0, "plan armed but nothing fired");
    drop(guard);
    assert_eq!(svc.queued(), 0, "no waiter stranded in the queue");
    assert_eq!(svc.in_flight(), 0, "no leaked in-flight slot");
    assert_eq!(svc.metrics().snapshot().in_flight, 0);
}

#[test]
fn hard_faults_under_queue_pressure_surface_structured_errors_and_leak_nothing() {
    use autogemm::{GemmService, RejectReason, ServiceConfig, ShedPolicy, TenantQuota};
    let _g = chaos_lock();
    let cfg = ServiceConfig {
        queue_depth: 8,
        max_in_flight: 2,
        shed: ShedPolicy { enabled: false, ..ShedPolicy::default() },
        ..ServiceConfig::default()
    };
    let svc = GemmService::new(ChipSpec::graviton2(), cfg);
    let tenant = svc.add_tenant("storm", TenantQuota { threads: 4, ..TenantQuota::default() });
    let guard =
        arm(FaultPlan::single(FaultSite::KernelDispatch, FaultAction::Panic, Trigger::EveryKth(3)));
    let (m, n, k) = SHAPE;
    let svc = &svc;
    let tenant = &tenant;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|t| {
                s.spawn(move || {
                    for i in 0..4u32 {
                        let (a, b) = data(m, n, k, 900 + t * 16 + i);
                        let mut c = vec![0.0f32; m * n];
                        match svc.submit(tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new()) {
                            Ok(_) => {
                                let err = max_rel_error(&c, &oracle(m, n, k, &a, &b));
                                assert!(err < 1e-5, "worker {t} call {i}: rel err {err}");
                            }
                            // Execution faults come back wrapped and named;
                            // admission pressure comes back as a rejection.
                            Err(GemmError::InService { tenant: who, source }) => {
                                assert_eq!(who, "storm");
                                assert!(
                                    !matches!(
                                        *source,
                                        GemmError::Rejected { .. } | GemmError::InService { .. }
                                    ),
                                    "wrapper must hold a root execution error, got {source:?}"
                                );
                            }
                            Err(GemmError::Rejected { reason, .. }) => {
                                assert!(
                                    matches!(reason, RejectReason::QueueFull),
                                    "only queue pressure may reject here, got {reason:?}"
                                );
                            }
                            Err(other) => panic!("unstructured failure: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no submitter panicked");
        }
    });
    drop(guard);
    assert_eq!(svc.queued(), 0, "no waiter stranded in the queue");
    assert_eq!(svc.in_flight(), 0, "no leaked in-flight slot");
    assert_eq!(svc.metrics().snapshot().in_flight, 0, "gauge settles to zero");
}

// ---------------------------------------------------------------------------
// Output-integrity chaos (ISSUE 10): seeded `CorruptOutput` injections at
// `FaultSite::KernelCompute` must be caught by the Freivalds layer at
// `Always`, caught at the sampling cadence under `Sample`, repaired by the
// resilient ladder's verified re-execution, and never flagged on clean runs.
// ---------------------------------------------------------------------------

/// The three dispatch routes the corruption sweep must cover: the packed
/// block driver, the GEMV fast path, and the elided-pack (unpacked
/// operand) block route.
const VERIFY_SHAPES: [(&str, usize, usize, usize); 3] =
    [("block", 40, 36, 24), ("gemv", 1, 96, 24), ("unpacked", 64, 49, 64)];

#[test]
fn corrupt_output_is_always_caught_across_routes_and_threads() {
    use autogemm::VerifyPolicy;
    let _g = chaos_lock();
    for (route, m, n, k) in VERIFY_SHAPES {
        for threads in THREADS {
            let engine = engine_unbroken();
            let (a, b) = data(m, n, k, 0xC0);
            let opts = GemmOptions::new().threads(threads).verify(VerifyPolicy::Always);

            let guard = arm(FaultPlan::single(
                FaultSite::KernelCompute,
                FaultAction::CorruptOutput { elements: 2 },
                Trigger::EveryKth(1),
            ));
            let mut c = vec![0.0f32; m * n];
            let e = engine.try_gemm_opts(m, n, k, &a, &b, &mut c, &opts).unwrap_err();
            assert!(guard.fired() >= 1, "{route} t{threads}: corruption never fired");
            drop(guard);
            assert!(
                matches!(e, GemmError::IntegrityViolation { check: "freivalds", .. }),
                "{route} t{threads}: expected IntegrityViolation, got {e:?}"
            );

            // Disarmed: the same call is clean and must never be flagged.
            let mut c2 = vec![0.0f32; m * n];
            engine
                .try_gemm_opts(m, n, k, &a, &b, &mut c2, &opts)
                .unwrap_or_else(|e| panic!("{route} t{threads}: clean run flagged: {e:?}"));
            assert!(max_rel_error(&c2, &oracle(m, n, k, &a, &b)) < 1e-5);
        }
    }
}

#[test]
fn resilient_ladder_repairs_a_corrupted_run_via_verified_reexecution() {
    use autogemm::supervisor::ResilientMode;
    use autogemm::VerifyPolicy;
    let _g = chaos_lock();
    for (route, m, n, k) in VERIFY_SHAPES {
        for threads in THREADS {
            let engine = engine_unbroken();
            let (a, b) = data(m, n, k, 0xC1);
            let opts = GemmOptions::new().threads(threads).verify(VerifyPolicy::Always);
            // Nth(1): only the first compute unit corrupts — the scalar
            // re-execution runs clean and its own verification attests it.
            let guard = arm(FaultPlan::single(
                FaultSite::KernelCompute,
                FaultAction::CorruptOutput { elements: 1 },
                Trigger::Nth(1),
            ));
            let mut c = vec![0.0f32; m * n];
            let report = engine
                .try_gemm_resilient(m, n, k, &a, &b, &mut c, &opts)
                .unwrap_or_else(|e| panic!("{route} t{threads}: repair failed: {e:?}"));
            assert_eq!(guard.fired(), 1, "{route} t{threads}");
            drop(guard);
            assert_eq!(report.mode, ResilientMode::VerifiedReexecution, "{route} t{threads}");
            assert_eq!(report.attempts, 2, "{route} t{threads}");
            let err = max_rel_error(&c, &oracle(m, n, k, &a, &b));
            assert!(err < 1e-5, "{route} t{threads}: repaired result off by {err}");
        }
    }
}

#[test]
fn sampled_verification_catches_corruption_at_exactly_the_sampling_cadence() {
    use autogemm::VerifyPolicy;
    let _g = chaos_lock();
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 0xC2);
    // Engine-default policy: every 4th call verifies (seq 0, 4, ...).
    let engine = engine_unbroken().with_verify_policy(VerifyPolicy::Sample { rate: 4 });
    let guard = arm(FaultPlan::single(
        FaultSite::KernelCompute,
        FaultAction::CorruptOutput { elements: 2 },
        Trigger::EveryKth(1),
    ));
    let mut caught = Vec::new();
    for call in 0..8 {
        let mut c = vec![0.0f32; m * n];
        match engine.try_gemm_opts(m, n, k, &a, &b, &mut c, &GemmOptions::new().threads(2)) {
            Ok(()) => {}
            Err(GemmError::IntegrityViolation { .. }) => caught.push(call),
            Err(other) => panic!("call {call}: unexpected {other:?}"),
        }
    }
    drop(guard);
    // Deterministic cadence: the sampler is a monotone counter, so with
    // every call corrupted, exactly the sampled calls are flagged.
    assert_eq!(caught, vec![0, 4], "sampled detections at the wrong cadence");
}

#[test]
fn repeated_integrity_violations_quarantine_the_path_to_scalar_kernels() {
    use autogemm::VerifyPolicy;
    let _g = chaos_lock();
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 0xC3);
    let want = oracle(m, n, k, &a, &b);
    let path = BreakerPath::VerifyIntegrity;
    let engine = AutoGemm::new(ChipSpec::graviton2())
        .with_breaker_config(BreakerConfig { fail_threshold: 2, open_cooldown: 2, close_after: 1 })
        .with_verify_policy(VerifyPolicy::Always);
    let opts = GemmOptions::new().threads(2);

    let guard = arm(FaultPlan::single(
        FaultSite::KernelCompute,
        FaultAction::CorruptOutput { elements: 2 },
        Trigger::EveryKth(1),
    ));
    // Calls 1 and 2: corrupted, caught, two consecutive faults -> trip.
    let mut c = vec![0.0f32; m * n];
    let e1 = engine.try_gemm_opts(m, n, k, &a, &b, &mut c, &opts).unwrap_err();
    assert!(matches!(e1, GemmError::IntegrityViolation { .. }), "{e1:?}");
    assert_eq!(engine.breaker().state(path), BreakerState::Closed);
    let e2 = engine.try_gemm_opts(m, n, k, &a, &b, &mut c, &opts).unwrap_err();
    assert!(matches!(e2, GemmError::IntegrityViolation { .. }), "{e2:?}");
    assert_eq!(engine.breaker().state(path), BreakerState::Open, "two violations must trip");
    drop(guard);

    // Call 3: Open -> quarantined to the scalar reference kernels. The
    // run is rerouted, verified (policy is Always) and correct.
    let r3 = engine.try_gemm_traced_opts(m, n, k, &a, &b, &mut c, &opts).unwrap();
    // A breaker reroute lands on the scalar reference kernels but is
    // accounted as a reroute, not a probe-degrade (`scalar_kernels`).
    assert!(r3.fallbacks.breaker_reroutes >= 1, "quarantine must reroute");
    assert_eq!(engine.breaker().state(path), BreakerState::Open);
    assert!(max_rel_error(&c, &want) < 1e-5, "quarantined run must be correct");
    let integ3 = r3.integrity.as_ref().expect("traced reports carry the integrity section");
    assert_eq!(integ3.policy, "always");
    assert!(integ3.verified, "Always policy must verify the quarantined run too");

    // Call 4: cooldown served -> HalfOpen probe (clean) -> Closed.
    let r4 = engine.try_gemm_traced_opts(m, n, k, &a, &b, &mut c, &opts).unwrap();
    assert_eq!(
        r4.health.transitions,
        vec![
            "verify_integrity: open -> half_open".to_string(),
            "verify_integrity: half_open -> closed".to_string(),
        ]
    );
    assert_eq!(engine.breaker().state(path), BreakerState::Closed);
    assert!(max_rel_error(&c, &want) < 1e-5);
    assert!(r4.integrity.as_ref().unwrap().verify_failures_total >= 2);
}

#[test]
fn clean_runs_are_never_flagged_under_always() {
    use autogemm::telemetry::Counter;
    use autogemm::VerifyPolicy;
    let _g = chaos_lock();
    let engine = AutoGemm::new(ChipSpec::graviton2()).with_verify_policy(VerifyPolicy::Always);
    for (route, m, n, k) in VERIFY_SHAPES {
        for threads in THREADS {
            let (a, b) = data(m, n, k, 0xC4);
            let mut c = vec![0.0f32; m * n];
            engine
                .try_gemm_opts(m, n, k, &a, &b, &mut c, &GemmOptions::new().threads(threads))
                .unwrap_or_else(|e| panic!("{route} t{threads}: clean run flagged: {e:?}"));
            assert!(max_rel_error(&c, &oracle(m, n, k, &a, &b)) < 1e-5);
        }
    }
    let snap = engine.metrics();
    assert_eq!(snap.counter(Counter::VerifyFailures), 0, "clean runs produced failures");
    assert!(snap.counter(Counter::VerifyRuns) >= 9, "Always must verify every call");
    assert_eq!(snap.counter(Counter::VerifyRuns), snap.counter(Counter::VerifyPasses));
}

#[test]
fn tenant_verify_policy_is_injected_and_caller_policy_wins() {
    use autogemm::{GemmService, ServiceConfig, TenantQuota, VerifyPolicy};
    let _g = chaos_lock();
    let svc = GemmService::new(ChipSpec::graviton2(), ServiceConfig::default());
    let audited = svc.add_tenant(
        "audited",
        TenantQuota { threads: 2, verify: VerifyPolicy::Always, ..TenantQuota::default() },
    );
    let lax = svc.add_tenant("lax", TenantQuota { threads: 2, ..TenantQuota::default() });
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 0xC5);
    let guard = arm(FaultPlan::single(
        FaultSite::KernelCompute,
        FaultAction::CorruptOutput { elements: 2 },
        Trigger::EveryKth(1),
    ));
    // The audited tenant's quota injects Always: corruption is caught and
    // comes back wrapped in the service error with the tenant named.
    let mut c = vec![0.0f32; m * n];
    let e = svc.submit(&audited, m, n, k, &a, &b, &mut c, &GemmOptions::new()).unwrap_err();
    match &e {
        GemmError::InService { tenant, source } => {
            assert_eq!(tenant, "audited");
            assert!(matches!(**source, GemmError::IntegrityViolation { .. }), "{source:?}");
        }
        other => panic!("expected InService wrapper, got {other:?}"),
    }
    // The lax tenant has no policy: the corrupted output sails through
    // unverified (per-tenant selectivity, not a global switch).
    let mut c2 = vec![0.0f32; m * n];
    svc.submit(&lax, m, n, k, &a, &b, &mut c2, &GemmOptions::new())
        .expect("unverified tenant must not be flagged");
    // A caller-set policy overrides the tenant's Off.
    let mut c3 = vec![0.0f32; m * n];
    let opts = GemmOptions::new().verify(VerifyPolicy::Always);
    let e3 = svc.submit(&lax, m, n, k, &a, &b, &mut c3, &opts).unwrap_err();
    assert!(matches!(e3, GemmError::InService { .. }), "{e3:?}");
    drop(guard);
    assert_eq!(svc.queued(), 0);
    assert_eq!(svc.in_flight(), 0);
}
