//! Property-based invariants of the tiling strategies and the tuner, run
//! across randomized shapes (the corner cases Fig 5/7 can't enumerate).

use autogemm_arch::ChipSpec;
use autogemm_kernelgen::MicroTile;
use autogemm_perfmodel::ModelOpts;
use autogemm_tiling::{plan_dmt, plan_libxsmm, plan_openblas};
use proptest::prelude::*;

fn opts() -> ModelOpts {
    ModelOpts { rotate: true, fused: true }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every DMT plan covers its block exactly once with feasible tiles.
    #[test]
    fn dmt_plans_always_cover(m in 1usize..72, nv in 1usize..20) {
        let n = nv * 4;
        let chip = ChipSpec::graviton2();
        let plan = plan_dmt(m, n, 48, &chip, opts());
        prop_assert!(plan.validate(4).is_ok(), "{m}x{n}: {:?}", plan.validate(4));
    }

    /// DMT never projects worse than either static strategy under its own
    /// (σ_AI-derated) metric.
    #[test]
    fn dmt_dominates_statics_in_model(m in 4usize..64, nv in 2usize..16) {
        let n = nv * 4;
        let chip = ChipSpec::kp920();
        let kc = 32;
        let dmt = plan_dmt(m, n, kc, &chip, opts()).effective_cycles(kc, &chip, opts());
        let tile = MicroTile::new(5, 16);
        let ob = plan_openblas(m, n, tile).effective_cycles(kc, &chip, opts());
        let xs = plan_libxsmm(m, n, tile, 4).effective_cycles(kc, &chip, opts());
        prop_assert!(dmt <= ob * 1.001, "{m}x{n}: dmt {dmt:.0} > openblas {ob:.0}");
        prop_assert!(dmt <= xs * 1.001, "{m}x{n}: dmt {dmt:.0} > libxsmm {xs:.0}");
    }

    /// Static plans cover too (LIBXSMM exactly; OpenBLAS with padding only
    /// outside the block).
    #[test]
    fn static_plans_cover(m in 1usize..72, nv in 1usize..20) {
        let n = nv * 4;
        let xs = plan_libxsmm(m, n, MicroTile::new(5, 16), 4);
        prop_assert!(xs.validate(4).is_ok());
        let ob = plan_openblas(m, n, MicroTile::new(5, 16));
        prop_assert!(ob.validate(4).is_ok());
        prop_assert_eq!(xs.padded_elems(), 0);
    }

    /// Tuned schedules always satisfy the paper's divisor constraints and
    /// keep the block working set within twice the private cache budget.
    #[test]
    fn tuner_respects_constraints(
        mi in 1usize..8, ni in 1usize..8, ki in 1usize..8,
    ) {
        let (m, n, k) = (mi * 16, ni * 28, ki * 24);
        let chip = ChipSpec::m2();
        let s = autogemm_tuner::tune(m, n, k, &chip);
        prop_assert_eq!(m % s.mc, 0);
        prop_assert_eq!(n % s.nc, 0);
        prop_assert_eq!(k % s.kc, 0);
    }
}

#[test]
fn dmt_handles_degenerate_blocks() {
    let chip = ChipSpec::graviton2();
    for (m, n) in [(1, 4), (1, 128), (72, 4), (2, 8), (3, 4)] {
        let plan = plan_dmt(m, n, 16, &chip, opts());
        plan.validate(4).unwrap_or_else(|e| panic!("{m}x{n}: {e}"));
        assert!(plan.tile_count() >= 1);
    }
}

#[test]
fn sve_plans_cover_with_16_lane_tiles() {
    let chip = ChipSpec::a64fx();
    for (m, n) in [(8, 16), (24, 64), (13, 48)] {
        let plan = plan_dmt(m, n, 32, &chip, opts());
        plan.validate(16).unwrap_or_else(|e| panic!("{m}x{n}: {e}"));
    }
}
