//! Hygiene of the generated AArch64-style assembly across the full tile
//! menu: every kernel renders, references only architectural registers,
//! balances its loop scaffolding, and contains the structures Listing 1
//! promises.

use autogemm_arch::ChipSpec;
use autogemm_kernelgen::{generate, tiles, MicroKernelSpec, PipelineOpts, Strides};

fn spec(tile: tiles::MicroTile, kc: usize, rotate: bool) -> MicroKernelSpec {
    MicroKernelSpec {
        tile,
        kc,
        sigma_lane: 4,
        accumulate: true,
        strides: Strides::Dynamic,
        opts: PipelineOpts { rotate, prefetch: true },
    }
}

#[test]
fn every_menu_kernel_renders_valid_scaffolding() {
    let chip = ChipSpec::idealized();
    for tile in tiles::table_menu(4) {
        for rotate in [false, true] {
            let asm = generate(&spec(tile, 24, rotate), &chip).render();
            // Loop scaffolding is balanced: one label per loop, one
            // back-branch per label.
            let labels = asm.lines().filter(|l| l.trim_end().ends_with(':')).count();
            let branches = asm.matches("bne ").count();
            assert_eq!(labels, branches, "{tile} rotate={rotate}:\n{asm}");
            // Listing 1 structure: prefetches up front, fmla in the body,
            // stores at the end.
            assert!(asm.contains("prfm PLDL1KEEP"), "{tile}");
            assert!(asm.contains("fmla"), "{tile}");
            assert!(asm.contains("str q"), "{tile}");
            // Loop counter convention.
            if asm.contains("1:") {
                assert!(asm.contains("subs x29, x29, #1"), "{tile}");
            }
        }
    }
}

#[test]
fn register_names_stay_architectural() {
    let chip = ChipSpec::idealized();
    for tile in tiles::first_choice_neon() {
        let asm = generate(&spec(tile, 16, true), &chip).render();
        for token in asm.split(|c: char| !c.is_alphanumeric()) {
            if let Some(n) = token.strip_prefix('v').and_then(|t| t.parse::<u32>().ok()) {
                assert!(n < 32, "{tile}: vector register v{n}");
            }
            if let Some(n) = token.strip_prefix('q').and_then(|t| t.parse::<u32>().ok()) {
                assert!(n < 32, "{tile}: q register q{n}");
            }
            if let Some(n) = token.strip_prefix('x').and_then(|t| t.parse::<u32>().ok()) {
                assert!(n < 31, "{tile}: scalar register x{n}");
            }
        }
    }
}

#[test]
fn instruction_stream_length_scales_with_kc() {
    // The loop body is kc-independent; only the trip count grows — the
    // whole point of the generator's structured loop.
    let chip = ChipSpec::idealized();
    let t = tiles::MicroTile::new(5, 16);
    let small = generate(&spec(t, 16, false), &chip);
    let large = generate(&spec(t, 160, false), &chip);
    let static_small: usize = small
        .blocks
        .iter()
        .map(|b| match b {
            autogemm_arch::Block::Straight(v) => v.len(),
            autogemm_arch::Block::Loop { body, .. } => body.len(),
        })
        .sum();
    let static_large: usize = large
        .blocks
        .iter()
        .map(|b| match b {
            autogemm_arch::Block::Straight(v) => v.len(),
            autogemm_arch::Block::Loop { body, .. } => body.len(),
        })
        .sum();
    assert_eq!(static_small, static_large, "static code size must not grow with k_c");
    assert!(large.dynamic_len() > small.dynamic_len() * 8);
}

#[test]
fn accumulate_toggles_c_panel_loads() {
    let chip = ChipSpec::idealized();
    let t = tiles::MicroTile::new(6, 12);
    let mut s = spec(t, 8, false);
    let with_acc = generate(&s, &chip).render();
    s.accumulate = false;
    let without = generate(&s, &chip).render();
    assert!(with_acc.matches("ldr q").count() > without.matches("ldr q").count());
    assert!(without.contains("movi"), "non-accumulating kernels zero their panel");
    assert!(!with_acc.contains("movi"));
}
