//! Input-aware dispatch guards (ISSUE 6): the engine's small-shape fast
//! paths and packing elision must be invisible in the output.
//!
//! * **Unpacked vs packed routing**: the plan-level driver run under
//!   every `OperandRouting` combination must produce identical `C` — the
//!   unpacked-operand kernels consume the same values in the same
//!   per-cell accumulation order as the packed ones.
//! * **GEMV/small-k vs block driver**: degenerate shapes the engine
//!   routes around the tuner (`m = 1`, `n = 1`, `k ≤ 8`) must match the
//!   always-packed block driver exactly.
//! * **Plan cache**: a repeated shape hits, and the cached plan's output
//!   is identical to the first (miss) call's.
//!
//! All operands here are exactly-representable (small integers scaled by
//! powers of two), so every accumulation order — fused or unfused, any
//! chunking — produces the same bits on every backend; `assert_eq!` on
//! the raw `f32`s is therefore an exact, backend-portable check.

use autogemm::native::gemm_with_plan;
use autogemm::{AutoGemm, ExecutionPlan, OperandRouting};
use autogemm_arch::ChipSpec;
use autogemm_tuner::tune;
use proptest::prelude::*;

/// Exactly-representable operands: integers in [-15, 15] scaled by 2^-3
/// and 2^-2 — all products and partial sums are exact in f32 at the
/// sizes used here, so accumulation order cannot change the bits.
fn data(m: usize, n: usize, k: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
    let f = |i: usize, s: u32| {
        (((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 31) as f32 - 15.0
    };
    let a = (0..m * k).map(|i| f(i, seed) * 0.125).collect();
    let b = (0..k * n).map(|i| f(i, seed ^ 0xd15c) * 0.25).collect();
    (a, b)
}

fn plan_for(m: usize, n: usize, k: usize) -> ExecutionPlan {
    let chip = ChipSpec::graviton2();
    ExecutionPlan::from_schedule(tune(m, n, k, &chip), &chip)
}

fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// The ISSUE 6 edge set: 1, 2, and ±1 around the dispatch table's
/// register-tile extents (`m_r` up to 8, `n̄_r` multiples of 4 up to 28).
const EDGE_DIMS: [usize; 8] = [1, 2, 4, 6, 9, 15, 17, 27];
const THREADS: [usize; 3] = [1, 2, 4];

#[test]
fn every_operand_routing_is_bit_identical() {
    // Medium shapes with at least one non-trivial block grid, plus a
    // pack-dominated one (n = 49 tunes to tn = 1 on the model chip).
    for (m, n, k) in [(24, 36, 40), (64, 49, 64), (40, 16, 72), (33, 28, 24)] {
        let plan = plan_for(m, n, k);
        let (a, b) = data(m, n, k, 7);
        for threads in THREADS {
            let mut c_packed = vec![0.0f32; m * n];
            gemm_with_plan(
                &plan.clone().with_routing(OperandRouting::packed()),
                &a,
                &b,
                &mut c_packed,
                threads,
            );
            assert_eq!(c_packed, naive(m, n, k, &a, &b), "{m}x{n}x{k} t{threads} packed");
            for (pack_a, pack_b) in [(false, true), (true, false), (false, false)] {
                let mut c_routed = vec![0.0f32; m * n];
                let routed = plan.clone().with_routing(OperandRouting { pack_a, pack_b });
                gemm_with_plan(&routed, &a, &b, &mut c_routed, threads);
                assert_eq!(
                    c_routed, c_packed,
                    "{m}x{n}x{k} t{threads} pack_a={pack_a} pack_b={pack_b} must match packed"
                );
            }
        }
    }
}

#[test]
fn degenerate_shapes_match_the_block_driver() {
    // m = 1 (row GEMV), n = 1 (column GEMV) and k ≤ 8 (small-k) all
    // bypass the tuner inside the engine; the always-packed plan-level
    // block driver is the cross-check.
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let mut shapes = Vec::new();
    for &d in &EDGE_DIMS {
        for &e in &EDGE_DIMS {
            shapes.push((1, d, e)); // row GEMV
            shapes.push((d, 1, e)); // column GEMV
            if e <= 8 {
                shapes.push((d, d.max(2), e)); // small-k
            }
        }
    }
    for (m, n, k) in shapes {
        let (a, b) = data(m, n, k, 21);
        let plan = plan_for(m, n, k);
        let mut c_block = vec![0.0f32; m * n];
        gemm_with_plan(&plan, &a, &b, &mut c_block, 1);
        assert_eq!(c_block, naive(m, n, k, &a, &b), "{m}x{n}x{k} block driver vs oracle");
        for threads in THREADS {
            let mut c_fast = vec![0.0f32; m * n];
            engine
                .try_gemm_threaded(m, n, k, &a, &b, &mut c_fast, threads)
                .unwrap_or_else(|e| panic!("{m}x{n}x{k} t{threads}: {e}"));
            assert_eq!(c_fast, c_block, "{m}x{n}x{k} t{threads}: fast path vs block driver");
        }
    }
}

#[test]
fn traced_dispatch_names_the_route_taken() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    for (m, n, k, want) in
        [(1, 40, 24, "gemv_row"), (40, 1, 24, "gemv_col"), (24, 20, 6, "small_k")]
    {
        let (a, b) = data(m, n, k, 3);
        let mut c = vec![0.0f32; m * n];
        let report = engine.gemm_traced(m, n, k, &a, &b, &mut c, 2);
        assert_eq!(report.dispatch.route, want, "{m}x{n}x{k}");
        assert!(!report.dispatch.packed_a && !report.dispatch.packed_b);
        assert_eq!(c, naive(m, n, k, &a, &b), "{m}x{n}x{k} traced fast path vs oracle");
    }
    // A regular shape reports the block route with its routing decision.
    let (m, n, k) = (48, 64, 32);
    let (a, b) = data(m, n, k, 5);
    let mut c = vec![0.0f32; m * n];
    let report = engine.gemm_traced(m, n, k, &a, &b, &mut c, 2);
    assert_eq!(report.dispatch.route, "block");
}

#[test]
fn plan_cache_hits_on_repeated_shapes_and_output_is_stable() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = (52, 40, 48);
    let (a, b) = data(m, n, k, 11);
    let mut c1 = vec![0.0f32; m * n];
    let r1 = engine.gemm_traced(m, n, k, &a, &b, &mut c1, 1);
    assert!(!r1.dispatch.plan_cache_hit, "first call must miss");
    let mut c2 = vec![0.0f32; m * n];
    let r2 = engine.gemm_traced(m, n, k, &a, &b, &mut c2, 1);
    assert!(r2.dispatch.plan_cache_hit, "second identical call must hit");
    assert!(r2.dispatch.plan_cache_hits > r1.dispatch.plan_cache_hits);
    assert_eq!(c2, c1, "cached plan must reproduce the miss call's bits");
    let stats = engine.plan_cache_stats();
    assert_eq!(stats.hits, r2.dispatch.plan_cache_hits);
    // A different thread budget is a different key: miss again.
    let mut c3 = vec![0.0f32; m * n];
    let r3 = engine.gemm_traced(m, n, k, &a, &b, &mut c3, 2);
    assert!(!r3.dispatch.plan_cache_hit, "threaded plan is a separate cache entry");
    assert_eq!(c3, c1);
    // GEMV shapes never consult the tuner, so they never touch the cache.
    let before = engine.plan_cache_stats();
    let (ga, gb) = data(1, 33, 17, 13);
    let mut gc = vec![0.0f32; 33];
    engine.gemm(1, 33, 17, &ga, &gb, &mut gc);
    let after = engine.plan_cache_stats();
    assert_eq!((before.hits, before.misses), (after.hits, after.misses));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random small/irregular shapes (the fast-path envelope plus the
    /// crossover into the block driver), random thread counts: the
    /// engine's input-aware dispatch must be bitwise invisible.
    #[test]
    fn dispatch_is_bitwise_invisible(
        m in 1usize..19,
        n in 1usize..19,
        k in 1usize..13,
        threads in 1usize..5,
        seed in 0u32..1000,
    ) {
        let engine = AutoGemm::new(ChipSpec::graviton2());
        let (a, b) = data(m, n, k, seed);
        let mut c_engine = vec![0.0f32; m * n];
        engine
            .try_gemm_threaded(m, n, k, &a, &b, &mut c_engine, threads)
            .unwrap_or_else(|e| panic!("{m}x{n}x{k} t{threads}: {e}"));
        let plan = plan_for(m, n, k);
        let mut c_block = vec![0.0f32; m * n];
        gemm_with_plan(&plan, &a, &b, &mut c_block, 1);
        prop_assert_eq!(&c_engine, &c_block);
        prop_assert_eq!(&c_block, &naive(m, n, k, &a, &b));
    }
}

/// Chaos coverage for the new paths: every injection either surfaces a
/// structured error or the run recovers bit-identically. Mirrors the
/// acceptance bar of `tests/chaos.rs` (which owns the block-driver
/// sweep); this file covers the GEMV/small-k units and elided-pack runs.
#[cfg(feature = "faultinject")]
mod chaos {
    use super::*;
    use autogemm::faultinject::{arm, FaultAction, FaultPlan, FaultSite, Trigger};
    use autogemm::supervisor::{BreakerConfig, CancelToken, GemmOptions};
    use autogemm::GemmError;
    use std::sync::{Mutex, MutexGuard, Once, OnceLock};

    /// Serializes fault-plan arming (one global plan at a time) and
    /// silences the intentional "injected fault" panics.
    fn chaos_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected fault"))
                    .unwrap_or(false);
                if !injected {
                    previous(info);
                }
            }));
        });
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
    }

    fn engine_unbroken() -> AutoGemm {
        AutoGemm::new(ChipSpec::graviton2()).with_breaker_config(BreakerConfig {
            fail_threshold: u32::MAX,
            open_cooldown: 1,
            close_after: 1,
        })
    }

    /// GEMV shapes under every site × action: structured error or exact.
    #[test]
    fn fast_paths_fault_structured_or_exact() {
        let _g = chaos_lock();
        let shapes = [(1usize, 40usize, 24usize), (40, 1, 24), (24, 20, 6)];
        let actions = [FaultAction::Degrade, FaultAction::Fail, FaultAction::Panic];
        for (m, n, k) in shapes {
            let (a, b) = data(m, n, k, 17);
            let want = naive(m, n, k, &a, &b);
            for site in FaultSite::ALL {
                for action in actions {
                    for threads in [1usize, 3] {
                        let engine = engine_unbroken();
                        let guard = arm(FaultPlan::single(site, action, Trigger::Nth(1)));
                        let mut c = vec![0.0f32; m * n];
                        let result = engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads);
                        drop(guard);
                        match result {
                            Ok(()) => assert_eq!(
                                c, want,
                                "{m}x{n}x{k} t{threads} {site:?}/{action:?}: recovered run must be exact"
                            ),
                            Err(e) => assert!(
                                !matches!(e, GemmError::PlanMismatch { .. }),
                                "{m}x{n}x{k} t{threads} {site:?}/{action:?}: unexpected {e}"
                            ),
                        }
                    }
                }
            }
        }
    }

    /// An elided-pack run still honours the pack-phase fault probes: the
    /// pool acquisition fires even when the copy is skipped.
    #[test]
    fn elided_pack_run_still_faults_at_pack_alloc() {
        let _g = chaos_lock();
        let (m, n, k) = (64usize, 49usize, 64usize);
        let (a, b) = data(m, n, k, 19);
        let want = naive(m, n, k, &a, &b);
        for action in [FaultAction::Degrade, FaultAction::Fail] {
            let engine = engine_unbroken();
            let guard = arm(FaultPlan::single(FaultSite::PackAlloc, action, Trigger::Nth(1)));
            let mut c = vec![0.0f32; m * n];
            let result = engine.try_gemm(m, n, k, &a, &b, &mut c);
            drop(guard);
            match (action, result) {
                (FaultAction::Degrade, Ok(())) => assert_eq!(c, want),
                (FaultAction::Fail, Err(GemmError::AllocFailed { .. })) => {}
                (_, other) => panic!("PackAlloc/{action:?}: unexpected {other:?}"),
            }
        }
    }

    /// Cancellation on the fast path reports a structured `Cancelled`
    /// with the unit-level progress counters.
    #[test]
    fn cancelled_fast_path_reports_progress() {
        let _g = chaos_lock();
        let engine = engine_unbroken();
        let (m, n, k) = (1usize, 64usize, 32usize);
        let (a, b) = data(m, n, k, 23);
        let token = CancelToken::new();
        token.cancel();
        let mut c = vec![0.0f32; m * n];
        let result = engine.try_gemm_opts(
            m,
            n,
            k,
            &a,
            &b,
            &mut c,
            &GemmOptions::new().threads(2).cancel(token),
        );
        match result {
            Err(GemmError::Cancelled { blocks_done, blocks_total, .. }) => {
                assert!(blocks_total > 0);
                assert!(blocks_done <= blocks_total);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }
}
