//! Coherence between the three views of a micro-kernel: the generator's
//! instruction stream, the analytic performance model (Eqns 4–11) and the
//! cycle-level simulator. They share Table III's parameters, so they must
//! agree — on instruction counts exactly, on cycles within tolerance.

use autogemm_arch::{ChipSpec, InstrClass};
use autogemm_kernelgen::{generate, tiles, MicroKernelSpec, PipelineOpts, Strides};
use autogemm_perfmodel::{projected_cycles, ModelOpts};
use autogemm_sim::{run_micro_kernel, Warmth};

fn spec(tile: tiles::MicroTile, kc: usize, rotate: bool) -> MicroKernelSpec {
    MicroKernelSpec {
        tile,
        kc,
        sigma_lane: 4,
        accumulate: true,
        strides: Strides::Dynamic,
        opts: PipelineOpts { rotate, prefetch: true },
    }
}

#[test]
fn fma_counts_equal_flops_for_every_menu_tile() {
    let chip = ChipSpec::idealized();
    for tile in tiles::table_menu(4) {
        for kc in [8usize, 19, 32] {
            let s = spec(tile, kc, false);
            let prog = generate(&s, &chip);
            // One FMLA covers σ_lane lanes; flops = 2 · lanes · fmla count.
            assert_eq!(prog.count_class(InstrClass::Fma) * 8, s.flops(), "{tile} kc={kc}");
        }
    }
}

#[test]
fn simulator_tracks_model_on_l1_resident_kernels() {
    // Model-vs-simulator agreement on the idealized machine for a spread
    // of tile shapes and depths — the Fig 3 cross-validation, generalized.
    let chip = ChipSpec::idealized();
    for tile in tiles::first_choice_neon() {
        for kc in [16usize, 64] {
            for rotate in [false, true] {
                let s = spec(tile, kc, rotate);
                let a = vec![1.0f32; tile.mr * kc];
                let b = vec![1.0f32; kc * tile.nr];
                let mut c = vec![0.0f32; tile.mr * tile.nr];
                let sim = run_micro_kernel(&s, &chip, &a, &b, &mut c, Warmth::L1);
                let model = projected_cycles(tile, kc, &chip, ModelOpts { rotate, fused: false });
                let ratio = sim.stats.cycles as f64 / model;
                assert!(
                    (0.6..1.5).contains(&ratio),
                    "{tile} kc={kc} rot={rotate}: sim {} model {model:.0} (x{ratio:.2})",
                    sim.stats.cycles
                );
            }
        }
    }
}

#[test]
fn rotation_helps_on_war_hazard_chips_only() {
    // §V-B: rotating register allocation pays on the KP920, not on
    // Graviton2/M2 (their windows + renaming already hide the loads).
    let measure = |chip: &ChipSpec, rotate: bool| {
        let tile = tiles::MicroTile::new(5, 16);
        let s = MicroKernelSpec { sigma_lane: chip.sigma_lane(), ..spec(tile, 64, rotate) };
        let a = vec![1.0f32; 5 * 64];
        let b = vec![1.0f32; 64 * 16];
        let mut c = vec![0.0f32; 5 * 16];
        run_micro_kernel(&s, chip, &a, &b, &mut c, Warmth::L1).stats.cycles
    };
    let kp = ChipSpec::kp920();
    assert!(measure(&kp, true) < measure(&kp, false), "rotation must help on KP920");
    let g2 = ChipSpec::graviton2();
    let (rot, basic) = (measure(&g2, true), measure(&g2, false));
    let delta = (basic as f64 - rot as f64) / basic as f64;
    assert!(delta.abs() < 0.03, "rotation should be neutral on Graviton2, delta {delta:.3}");
}

#[test]
fn fusion_saves_cycles_at_small_kc() {
    // §III-C2: prologue/epilogue dominate at small k_c; fusing a chain of
    // kernels beats running them separately.
    use autogemm_kernelgen::TileInvocation;
    use autogemm_sim::{run_chain, run_unfused, KernelBuffers};
    let chip = ChipSpec::kp920();
    let (mr, nr, kc, n_tiles) = (5usize, 16usize, 4usize, 6usize);
    let mk_invs = || -> Vec<TileInvocation> {
        (0..n_tiles)
            .map(|t| TileInvocation {
                spec: MicroKernelSpec {
                    tile: tiles::MicroTile::new(mr, nr),
                    kc,
                    sigma_lane: 4,
                    accumulate: true,
                    strides: Strides::Static { lda: kc + 8, ldb: nr * n_tiles, ldc: nr * n_tiles },
                    opts: PipelineOpts::rotated(),
                },
                a_off: 0,
                b_off: t * nr,
                c_off: t * nr,
            })
            .collect()
    };
    let a = vec![1.0f32; mr * kc];
    let b = vec![1.0f32; kc * nr * n_tiles];
    let c = vec![0.0f32; mr * nr * n_tiles];
    let mut bufs = KernelBuffers::new(mr, nr * n_tiles, kc, 4, &a, &b, &c);
    let fused = run_chain(&mk_invs(), &chip, &mut bufs, Warmth::L1);
    let mut bufs2 = KernelBuffers::new(mr, nr * n_tiles, kc, 4, &a, &b, &c);
    let unfused = run_unfused(&mk_invs(), &chip, &mut bufs2, Warmth::L1);
    let saving = 1.0 - fused.cycles as f64 / unfused.cycles as f64;
    assert!(saving > 0.10, "fusion saving {saving:.3} at k_c=4 (paper: ~16%)");
}

#[test]
fn sve_pipeline_works_end_to_end() {
    let chip = ChipSpec::a64fx();
    let tile = tiles::MicroTile::new(4, 32);
    assert!(tile.feasible(16));
    let s = MicroKernelSpec {
        tile,
        kc: 32,
        sigma_lane: 16,
        accumulate: true,
        strides: Strides::Dynamic,
        opts: PipelineOpts::rotated(),
    };
    let a = vec![2.0f32; 4 * 32];
    let b = vec![0.5f32; 32 * 32];
    let mut c = vec![0.0f32; 4 * 32];
    let r = run_micro_kernel(&s, &chip, &a, &b, &mut c, Warmth::L1);
    // 2.0 * 0.5 * 32 accumulations = 32.0 everywhere.
    assert!(c.iter().all(|&x| (x - 32.0).abs() < 1e-4));
    assert!(r.stats.cycles > 0);
}
