//! Property tests for the explicit-SIMD micro-kernel menu:
//!
//! * every `(m_r, n_r)` kernel the dispatch table can reach agrees with
//!   the scalar reference kernel on random `kc` and random partial
//!   `eff_rows`/`eff_cols` edge tiles (bit-for-bit on fused backends,
//!   within rounding tolerance on plain SSE2);
//! * threaded GEMM results through the SIMD kernels are bit-identical
//!   across thread counts (the work queue only changes *who* computes a
//!   block, never what is computed).

use autogemm::native::{run_placement, run_placement_ref, CTile, KERNEL_MENU};
use autogemm::simd::SimdBackend;
use autogemm::ExecutionPlan;
use autogemm_arch::ChipSpec;
use autogemm_tiling::TilePlacement;
use autogemm_tuner::tune;
use proptest::prelude::*;

fn data(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 16) % 61) as f32 / 4.0 - 7.5
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dispatched kernel vs scalar reference on every menu shape,
    /// including partial edge tiles.
    #[test]
    fn menu_kernels_match_scalar_reference(
        menu_idx in 0..KERNEL_MENU.len(),
        kc in 1usize..96,
        seed in 0u32..1_000_000,
        edge in proptest::bool::ANY,
    ) {
        let (mr, nr) = KERNEL_MENU[menu_idx];
        // Case-0 minimum (menu_idx 0, kc 1, edge false) exercises the
        // 1x4 full tile; `edge` shrinks the effective region.
        let (eff_rows, eff_cols) = if edge {
            (1 + (seed as usize % mr), 1 + (seed as usize / 7 % nr))
        } else {
            (mr, nr)
        };
        let lda = kc + 8;
        let a = data(mr * lda, seed);
        let ldb = nr + 4;
        let b = data((kc + 2) * ldb, seed ^ 0x9e37);
        let c0 = data(mr * nr, seed ^ 0x5bd1);
        let accumulate = seed % 3 != 0;
        let placement = TilePlacement {
            row: 0,
            col: 0,
            tile: autogemm_kernelgen::MicroTile::new(mr, nr),
            eff_rows,
            eff_cols,
        };

        let mut c_simd = c0.clone();
        let mut c_ref = c0;
        let t_simd = unsafe { CTile::new(c_simd.as_mut_ptr(), nr, c_simd.len()) };
        let t_ref = unsafe { CTile::new(c_ref.as_mut_ptr(), nr, c_ref.len()) };
        run_placement(&placement, kc, &a, lda, &b, ldb, t_simd, accumulate);
        run_placement_ref(&placement, kc, &a, lda, &b, ldb, t_ref, accumulate);

        let fused = SimdBackend::detect().fused();
        for (i, (&got, &want)) in c_simd.iter().zip(&c_ref).enumerate() {
            if fused {
                prop_assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "{}x{} kc={} eff=({},{}) acc={} C[{}]: {} vs {} (fused backend must be \
                     bit-identical)",
                    mr, nr, kc, eff_rows, eff_cols, accumulate, i, got, want
                );
            } else {
                prop_assert!(
                    (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "{}x{} kc={} eff=({},{}) acc={} C[{}]: {} vs {}",
                    mr, nr, kc, eff_rows, eff_cols, accumulate, i, got, want
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Threaded GEMM through the SIMD kernels is bit-identical at every
    /// thread count.
    #[test]
    fn threaded_gemm_bit_identical_across_thread_counts(
        m in 1usize..48,
        n in 1usize..64,
        k in 1usize..40,
        seed in 0u32..1_000_000,
    ) {
        let chip = ChipSpec::graviton2();
        let sched = tune(m, n, k, &chip);
        let plan = ExecutionPlan::from_schedule(sched, &chip);
        let a = data(m * k, seed);
        let b = data(k * n, seed ^ 0xabcd);
        let mut reference: Option<Vec<f32>> = None;
        for threads in [1usize, 2, 3, 4, 7] {
            let mut c = vec![0.0f32; m * n];
            autogemm::native::gemm_with_plan(&plan, &a, &b, &mut c, threads);
            match &reference {
                None => reference = Some(c),
                Some(r) => {
                    prop_assert!(
                        c.iter().zip(r).all(|(x, y)| x.to_bits() == y.to_bits()),
                        "{}x{}x{} t{}: diverged from single-thread result",
                        m, n, k, threads
                    );
                }
            }
        }
    }
}
