//! Integration guards for the per-GEMM telemetry layer:
//!
//! * the traced driver is a pure observer — its `C` output is
//!   bit-identical to the untraced panel-cache driver on random shapes
//!   and thread counts (ci.sh runs this file with the `telemetry`
//!   feature both off and on, so the property pins both paths);
//! * reports survive a JSON round trip through the public API and the
//!   schema-version guard rejects foreign versions;
//! * with the feature off, every timing and counter in a traced report
//!   is zero (the clock and session hooks compile to no-ops); with it
//!   on, the phase clocks tick and the model join is populated.

use autogemm::native::{gemm_with_plan, gemm_with_plan_traced};
use autogemm::telemetry::{HealthReport, MIN_SCHEMA_VERSION, SCHEMA_VERSION};
use autogemm::{AutoGemm, ExecutionPlan, GemmReport, PanelPool};
use autogemm_arch::ChipSpec;
use autogemm_perfmodel::{ModelOpts, ProjectionTable};
use autogemm_tuner::tune;
use proptest::prelude::*;

fn data(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 16) % 61) as f32 / 4.0 - 7.5
        })
        .collect()
}

fn traced_pair(
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    seed: u32,
) -> (Vec<f32>, Vec<f32>, GemmReport) {
    let chip = ChipSpec::graviton2();
    let plan = ExecutionPlan::from_schedule(tune(m, n, k, &chip), &chip);
    let a = data(m * k, seed);
    let b = data(k * n, seed ^ 0x9e37);
    let mut c_plain = vec![0.0f32; m * n];
    gemm_with_plan(&plan, &a, &b, &mut c_plain, threads);
    let pool = PanelPool::new();
    let mut c_traced = vec![0.0f32; m * n];
    let report = gemm_with_plan_traced(&plan, &a, &b, &mut c_traced, threads, &pool);
    (c_plain, c_traced, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Telemetry must never perturb numerics: same packs, same
    /// accumulation order, bit-identical C — whether the feature is on
    /// (hooks live) or off (hooks are no-ops).
    #[test]
    fn traced_output_bit_identical_to_untraced(
        m in 1usize..48,
        n in 1usize..56,
        k in 1usize..40,
        threads in 1usize..5,
        seed in 0u32..1_000_000,
    ) {
        let (c_plain, c_traced, report) = traced_pair(m, n, k, threads, seed);
        prop_assert_eq!(c_traced, c_plain);
        prop_assert_eq!((report.m, report.n, report.k), (m, n, k));
        let blocks: u64 = report.thread_profiles.iter().map(|p| p.blocks).sum();
        prop_assert!(blocks > 0, "every GEMM drains at least one block");
    }

    /// Every report that comes out of the traced driver (model join
    /// attached or not) must survive serialization unchanged.
    #[test]
    fn live_reports_round_trip_through_json(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..32,
        threads in 1usize..4,
        join in proptest::bool::ANY,
    ) {
        let (_, _, mut report) = traced_pair(m, n, k, threads, 7);
        if join {
            let chip = ChipSpec::graviton2();
            let mut table = ProjectionTable::new(&chip, ModelOpts::default());
            report.join_model(&mut table);
        }
        let back = GemmReport::from_json(&report.to_json()).expect("round trip");
        prop_assert_eq!(back, report);
    }
}

#[test]
fn schema_version_guard_rejects_foreign_reports() {
    let (_, _, report) = traced_pair(16, 24, 16, 1, 3);
    let text = report.to_json();
    assert!(text.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
    let tampered =
        text.replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":9999");
    let err = GemmReport::from_json(&tampered).unwrap_err();
    assert!(err.to_string().contains("unsupported schema_version"), "{err}");
}

/// Schema v2: engine reports carry the circuit-breaker health section
/// (every dispatch path, closed on a healthy engine) and survive
/// the JSON round trip with it populated.
#[test]
fn engine_reports_carry_a_health_section_that_round_trips() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = (26, 36, 24);
    let a = data(m * k, 21);
    let b = data(k * n, 22);
    let mut c = vec![0.0f32; m * n];
    let report = engine.try_gemm_traced(m, n, k, &a, &b, &mut c, 2).unwrap();
    assert_eq!(report.health.paths.len(), 4, "engine reports name every breaker path");
    assert!(report.health.all_closed());
    let text = report.to_json();
    assert!(text.contains("\"health\""), "{text}");
    assert!(text.contains("\"simd_dispatch\""), "{text}");
    let back = GemmReport::from_json(&text).expect("round trip");
    assert_eq!(back, report);
}

/// Forward compatibility: a schema-v1 report (no `health` section) must
/// still parse, coming back with the default (empty, all-closed) health.
#[test]
fn v1_reports_without_health_parse_leniently() {
    assert_eq!(MIN_SCHEMA_VERSION, 1);
    // Plan-level traced reports carry default health, so the serialized
    // section is the literal empty object — strip it and drop to v1.
    let (_, _, report) = traced_pair(16, 24, 16, 2, 17);
    assert_eq!(report.health, HealthReport::default());
    let v1 = report
        .to_json()
        .replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":1")
        .replace("\"health\":{\"paths\":[],\"transitions\":[]},", "");
    assert!(!v1.contains("health"), "v1 fixture must not carry a health section");
    let back = GemmReport::from_json(&v1).expect("v1 reports must stay readable");
    assert_eq!(back.health, HealthReport::default());
    assert!(back.health.all_closed());
}

#[cfg(not(feature = "telemetry"))]
#[test]
fn feature_off_reports_are_structurally_filled_but_zeroed() {
    let (_, _, report) = traced_pair(26, 36, 24, 2, 11);
    assert_eq!((report.m, report.n, report.k), (26, 36, 24));
    assert!(report.threads >= 1, "structure still filled in");
    assert_eq!(report.wall, Default::default(), "no clock without the feature");
    assert_eq!(report.phases, Default::default());
    assert_eq!(report.packs, Default::default());
    assert!(report.tiles.is_empty(), "no histogram without the feature");
    assert_eq!(report.gflops(), 0.0);
}

#[cfg(feature = "telemetry")]
#[test]
fn feature_on_reports_carry_live_timings_and_model_join() {
    let (_, _, mut report) = traced_pair(64, 96, 64, 2, 11);
    assert!(report.wall.wall_ns > 0);
    assert!(report.phases.kernel.wall_ns > 0);
    assert!(report.packs.a_packs > 0 && report.packs.b_packs > 0);
    assert!(report.total_tiles() > 0);
    assert!(report.gflops() > 0.0);

    let chip = ChipSpec::graviton2();
    let mut table = ProjectionTable::new(&chip, ModelOpts::default());
    report.join_model(&mut table);
    let mj = report.model.expect("join populated");
    assert!(mj.projected_kernel_cycles > 0.0);
    // Host cycle counters may be unavailable on exotic platforms (the
    // clock falls back to wall time there) but must be monotone here.
    if mj.measured_kernel_cycles > 0 {
        assert!(mj.cycle_ratio > 0.0);
    }
}
