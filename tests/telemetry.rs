//! Integration guards for the per-GEMM telemetry layer:
//!
//! * the traced driver is a pure observer — its `C` output is
//!   bit-identical to the untraced panel-cache driver on random shapes
//!   and thread counts (ci.sh runs this file with the `telemetry`
//!   feature both off and on, so the property pins both paths);
//! * reports survive a JSON round trip through the public API and the
//!   schema-version guard rejects foreign versions;
//! * with the feature off, every timing and counter in a traced report
//!   is zero (the clock and session hooks compile to no-ops); with it
//!   on, the phase clocks tick and the model join is populated.

use autogemm::native::{gemm_with_plan, gemm_with_plan_traced};
use autogemm::telemetry::metrics::{bucket_index, HIST_BOUNDS};
use autogemm::telemetry::{Counter, HealthReport, Histogram, MIN_SCHEMA_VERSION, SCHEMA_VERSION};
use autogemm::{AutoGemm, ExecutionPlan, GemmReport, PanelPool};
use autogemm_arch::ChipSpec;
use autogemm_perfmodel::{ModelOpts, ProjectionTable};
use autogemm_tuner::tune;
use proptest::prelude::*;

fn data(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 16) % 61) as f32 / 4.0 - 7.5
        })
        .collect()
}

fn traced_pair(
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    seed: u32,
) -> (Vec<f32>, Vec<f32>, GemmReport) {
    let chip = ChipSpec::graviton2();
    let plan = ExecutionPlan::from_schedule(tune(m, n, k, &chip), &chip);
    let a = data(m * k, seed);
    let b = data(k * n, seed ^ 0x9e37);
    let mut c_plain = vec![0.0f32; m * n];
    gemm_with_plan(&plan, &a, &b, &mut c_plain, threads);
    let pool = PanelPool::new();
    let mut c_traced = vec![0.0f32; m * n];
    let report = gemm_with_plan_traced(&plan, &a, &b, &mut c_traced, threads, &pool);
    (c_plain, c_traced, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Telemetry must never perturb numerics: same packs, same
    /// accumulation order, bit-identical C — whether the feature is on
    /// (hooks live) or off (hooks are no-ops).
    #[test]
    fn traced_output_bit_identical_to_untraced(
        m in 1usize..48,
        n in 1usize..56,
        k in 1usize..40,
        threads in 1usize..5,
        seed in 0u32..1_000_000,
    ) {
        let (c_plain, c_traced, report) = traced_pair(m, n, k, threads, seed);
        prop_assert_eq!(c_traced, c_plain);
        prop_assert_eq!((report.m, report.n, report.k), (m, n, k));
        let blocks: u64 = report.thread_profiles.iter().map(|p| p.blocks).sum();
        prop_assert!(blocks > 0, "every GEMM drains at least one block");
    }

    /// Every report that comes out of the traced driver (model join
    /// attached or not) must survive serialization unchanged.
    #[test]
    fn live_reports_round_trip_through_json(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..32,
        threads in 1usize..4,
        join in proptest::bool::ANY,
    ) {
        let (_, _, mut report) = traced_pair(m, n, k, threads, 7);
        if join {
            let chip = ChipSpec::graviton2();
            let mut table = ProjectionTable::new(&chip, ModelOpts::default());
            report.join_model(&mut table);
        }
        let back = GemmReport::from_json(&report.to_json()).expect("round trip");
        prop_assert_eq!(back, report);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard-merge determinism: however the writers' shard hints scatter
    /// the samples, the merged snapshot is identical to recording the
    /// same values into a single shard — the merge is an exact
    /// bucket-wise sum, not an approximation.
    #[test]
    fn histogram_shard_merge_is_deterministic(
        samples in proptest::collection::vec((0u64..50_000_000, 0usize..1024), 1..300),
    ) {
        let sharded = Histogram::new();
        let single = Histogram::new();
        for &(v, hint) in &samples {
            sharded.record(v, hint);
            single.record(v, 0);
        }
        prop_assert_eq!(sharded.snapshot(), single.snapshot());
        // Reversed recording order must merge to the same snapshot too.
        let reversed = Histogram::new();
        for &(v, hint) in samples.iter().rev() {
            reversed.record(v, hint.wrapping_mul(31));
        }
        prop_assert_eq!(reversed.snapshot(), sharded.snapshot());
    }

    /// Percentile correctness at bucket resolution: the reported
    /// quantile is the inclusive upper bound of the bucket holding the
    /// true rank-order statistic of the recorded values.
    #[test]
    fn quantiles_bound_the_true_order_statistic(
        values in proptest::collection::vec(0u64..100_000_000, 1..200),
        q in 0.01f64..1.0,
    ) {
        let hist = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            hist.record(v, i);
        }
        let got = hist.snapshot().quantile(q);
        let mut values = values;
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let truth = values[rank - 1];
        prop_assert_eq!(
            got,
            HIST_BOUNDS[bucket_index(truth)],
            "q={} of {} values: true order statistic {}",
            q,
            values.len(),
            truth
        );
        prop_assert!(got >= truth, "quantile is an upper bound of its bucket");
    }
}

/// The acceptance-criteria accumulation contract: after 100+ engine
/// calls, [`AutoGemm::metrics`] reports call-latency quantiles, the
/// plan-cache counter split and the breaker-transition count — and the
/// same snapshot serializes to a Prometheus dump carrying the series.
#[test]
fn engine_metrics_accumulate_over_a_hundred_calls() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let shapes = [(16usize, 16usize, 16usize), (24, 20, 12), (8, 40, 16)];
    let mut calls = 0u64;
    for rep in 0..40 {
        for &(m, n, k) in &shapes {
            let a = data(m * k, rep);
            let b = data(k * n, rep ^ 0x5eed);
            let mut c = vec![0.0f32; m * n];
            engine.try_gemm(m, n, k, &a, &b, &mut c).expect("gemm");
            calls += 1;
        }
    }
    assert!(calls >= 100);
    let snap = engine.metrics();
    assert!(snap.enabled, "registry records by default");
    assert_eq!(snap.counter(Counter::Calls), calls);
    assert_eq!(snap.counter(Counter::Errors), 0);
    assert_eq!(snap.call_latency_ns.count, calls);
    let (p50, p99) = (snap.call_latency_ns.p50(), snap.call_latency_ns.p99());
    assert!(p50 > 0 && p99 >= p50, "latency quantiles populated: p50={p50} p99={p99}");
    // Three distinct shapes tuned once each, every later call a hit.
    assert_eq!(snap.counter(Counter::PlanCacheMisses), shapes.len() as u64);
    assert_eq!(snap.counter(Counter::PlanCacheHits), calls - shapes.len() as u64);
    assert_eq!(
        snap.counter(Counter::BreakerTransitions),
        0,
        "healthy engine never moves the breaker"
    );
    let prom = snap.to_prometheus();
    for series in [
        "autogemm_calls_total",
        "autogemm_call_latency_ns_bucket",
        "autogemm_call_latency_ns_count",
    ] {
        assert!(prom.contains(series), "Prometheus dump missing {series}:\n{prom}");
    }
}

/// Switching metrics off freezes the registry: no counters move, no
/// samples land, and the engine call path still works.
#[test]
fn metrics_can_be_disabled_at_runtime() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = (16, 16, 16);
    let a = data(m * k, 1);
    let b = data(k * n, 2);
    let mut c = vec![0.0f32; m * n];
    engine.try_gemm(m, n, k, &a, &b, &mut c).expect("gemm");
    engine.set_metrics_enabled(false);
    assert!(!engine.metrics_enabled());
    let frozen = engine.metrics();
    for _ in 0..5 {
        engine.try_gemm(m, n, k, &a, &b, &mut c).expect("gemm");
    }
    let after = engine.metrics();
    assert_eq!(after.counter(Counter::Calls), frozen.counter(Counter::Calls));
    assert_eq!(after.call_latency_ns.count, frozen.call_latency_ns.count);
    engine.set_metrics_enabled(true);
    engine.try_gemm(m, n, k, &a, &b, &mut c).expect("gemm");
    assert_eq!(engine.metrics().counter(Counter::Calls), frozen.counter(Counter::Calls) + 1);
}

/// A tracing engine records pack/kernel spans and exports a Chrome
/// trace-event timeline with named tracks.
#[test]
fn tracing_engine_exports_a_chrome_timeline() {
    let engine = AutoGemm::new(ChipSpec::graviton2()).with_tracing(256);
    let (m, n, k) = (64, 64, 64);
    let a = data(m * k, 3);
    let b = data(k * n, 4);
    let mut c = vec![0.0f32; m * n];
    for _ in 0..2 {
        engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 2).expect("gemm");
    }
    let tracer = engine.tracer().expect("built with tracing");
    let spans = tracer.snapshot();
    assert!(
        spans.iter().any(|s| s.cat == "phase" && s.name == "kernel"),
        "kernel spans recorded: {spans:?}"
    );
    let json = engine.trace_export().expect("tracer attached");
    let parsed = autogemm::telemetry::Json::parse(&json).expect("valid trace JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(autogemm::telemetry::Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    assert!(json.contains("thread_name"), "tracks are named for Perfetto");
}

#[test]
fn schema_version_guard_rejects_foreign_reports() {
    let (_, _, report) = traced_pair(16, 24, 16, 1, 3);
    let text = report.to_json();
    assert!(text.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
    let tampered =
        text.replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":9999");
    let err = GemmReport::from_json(&tampered).unwrap_err();
    assert!(err.to_string().contains("unsupported schema_version"), "{err}");
}

/// Schema v2: engine reports carry the circuit-breaker health section
/// (every dispatch path, closed on a healthy engine) and survive
/// the JSON round trip with it populated.
#[test]
fn engine_reports_carry_a_health_section_that_round_trips() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = (26, 36, 24);
    let a = data(m * k, 21);
    let b = data(k * n, 22);
    let mut c = vec![0.0f32; m * n];
    let report = engine.try_gemm_traced(m, n, k, &a, &b, &mut c, 2).unwrap();
    assert_eq!(report.health.paths.len(), 5, "engine reports name every breaker path");
    assert!(report.health.all_closed());
    let text = report.to_json();
    assert!(text.contains("\"health\""), "{text}");
    assert!(text.contains("\"simd_dispatch\""), "{text}");
    let back = GemmReport::from_json(&text).expect("round trip");
    assert_eq!(back, report);
}

/// Forward compatibility: a schema-v1 report (no `health` section) must
/// still parse, coming back with the default (empty, all-closed) health.
#[test]
fn v1_reports_without_health_parse_leniently() {
    assert_eq!(MIN_SCHEMA_VERSION, 1);
    // Plan-level traced reports carry default health, so the serialized
    // section is the literal empty object — strip it and drop to v1.
    let (_, _, report) = traced_pair(16, 24, 16, 2, 17);
    assert_eq!(report.health, HealthReport::default());
    let v1 = report
        .to_json()
        .replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":1")
        .replace("\"health\":{\"paths\":[],\"transitions\":[]},", "");
    assert!(!v1.contains("health"), "v1 fixture must not carry a health section");
    let back = GemmReport::from_json(&v1).expect("v1 reports must stay readable");
    assert_eq!(back.health, HealthReport::default());
    assert!(back.health.all_closed());
}

#[cfg(not(feature = "telemetry"))]
#[test]
fn feature_off_reports_are_structurally_filled_but_zeroed() {
    let (_, _, report) = traced_pair(26, 36, 24, 2, 11);
    assert_eq!((report.m, report.n, report.k), (26, 36, 24));
    assert!(report.threads >= 1, "structure still filled in");
    assert_eq!(report.wall, Default::default(), "no clock without the feature");
    assert_eq!(report.phases, Default::default());
    assert_eq!(report.packs, Default::default());
    assert!(report.tiles.is_empty(), "no histogram without the feature");
    assert_eq!(report.gflops(), 0.0);
}

#[cfg(feature = "telemetry")]
#[test]
fn feature_on_reports_carry_live_timings_and_model_join() {
    let (_, _, mut report) = traced_pair(64, 96, 64, 2, 11);
    assert!(report.wall.wall_ns > 0);
    assert!(report.phases.kernel.wall_ns > 0);
    assert!(report.packs.a_packs > 0 && report.packs.b_packs > 0);
    assert!(report.total_tiles() > 0);
    assert!(report.gflops() > 0.0);

    let chip = ChipSpec::graviton2();
    let mut table = ProjectionTable::new(&chip, ModelOpts::default());
    report.join_model(&mut table);
    let mj = report.model.expect("join populated");
    assert!(mj.projected_kernel_cycles > 0.0);
    // Host cycle counters may be unavailable on exotic platforms (the
    // clock falls back to wall time there) but must be monotone here.
    if mj.measured_kernel_cycles > 0 {
        assert!(mj.cycle_ratio > 0.0);
    }
}
