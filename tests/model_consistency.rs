//! Consistency of the three cost views across whole *plans* (not just
//! single kernels): the Eqn 13 analytic estimate, the σ_AI-derated DMT
//! metric, and the cycle-level block simulation must tell coherent
//! stories — same winners, sane ratios.

use autogemm::ExecutionPlan;
use autogemm_arch::ChipSpec;
use autogemm_perfmodel::ModelOpts;
use autogemm_tuner::tune;

fn simulated_block_cycles(plan: &ExecutionPlan, chip: &ChipSpec) -> f64 {
    autogemm::simexec::simulate_block(plan, chip, true).cycles as f64
}

#[test]
fn model_and_simulator_agree_within_2x_on_l1_resident_blocks() {
    let chip = ChipSpec::graviton2();
    for (m, n, k) in [(26usize, 36usize, 64usize), (40, 48, 32), (64, 64, 64)] {
        let plan = ExecutionPlan::from_schedule(tune(m, n, k, &chip), &chip);
        let model = plan.block_plan.projected_cycles(plan.schedule.kc, &chip, plan.opts);
        let sim = simulated_block_cycles(&plan, &chip);
        let ratio = sim / model;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{m}x{n}x{k}: sim {sim:.0} vs model {model:.0} (x{ratio:.2})"
        );
    }
}

#[test]
fn derated_metric_ranks_plans_like_the_simulator() {
    // For a ragged block where tile choice matters, the strategy the
    // derated model prefers must also win on the simulator.
    use autogemm_kernelgen::MicroTile;
    use autogemm_tiling::{plan_dmt, plan_libxsmm};
    use autogemm_tuner::space::LoopOrder;
    use autogemm_tuner::{Packing, Schedule};
    let chip = ChipSpec::graviton2();
    let (m, n, kc) = (26usize, 36usize, 64usize);
    let opts = ModelOpts { rotate: true, fused: true };
    let sched = Schedule {
        m,
        n,
        k: kc,
        mc: m,
        nc: n,
        kc,
        order: LoopOrder::goto(),
        packing: Packing::Online,
    };
    let mk_plan = |block_plan| ExecutionPlan {
        schedule: sched.clone(),
        block_plan,
        opts,
        sigma_lane: 4,
        warmth: None,
        routing: autogemm::OperandRouting::packed(),
    };
    let dmt = mk_plan(plan_dmt(m, n, kc, &chip, opts));
    let xsmm = mk_plan(plan_libxsmm(m, n, MicroTile::new(5, 16), 4));

    let model_prefers_dmt = dmt.block_plan.effective_cycles(kc, &chip, opts)
        <= xsmm.block_plan.effective_cycles(kc, &chip, opts);
    let sim_prefers_dmt =
        simulated_block_cycles(&dmt, &chip) <= simulated_block_cycles(&xsmm, &chip) * 1.02;
    assert!(model_prefers_dmt, "derated model must prefer DMT on 26x36");
    assert!(sim_prefers_dmt, "simulator must agree with the model's ranking");
}

#[test]
fn efficiency_is_monotone_in_problem_regularity() {
    // A lane-aligned, divisor-friendly shape should never simulate slower
    // (per flop) than a ragged variant of comparable size.
    let chip = ChipSpec::graviton2();
    let engine = autogemm::AutoGemm::new(chip.clone());
    let friendly = engine.simulate(64, 64, 64, 1);
    let ragged = engine.simulate(61, 67, 64, 1);
    assert!(
        friendly.efficiency >= ragged.efficiency * 0.98,
        "friendly {:.3} vs ragged {:.3}",
        friendly.efficiency,
        ragged.efficiency
    );
}

#[test]
fn prepacked_and_plain_native_paths_agree() {
    let chip = ChipSpec::graviton2();
    let engine = autogemm::AutoGemm::new(chip.clone());
    let (m, n, k) = (32usize, 48usize, 40usize);
    let plan = engine.plan(m, n, k);
    let a: Vec<f32> = (0..m * k).map(|i| ((i * 3) % 17) as f32 - 8.0).collect();
    let b: Vec<f32> = (0..k * n).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();

    let mut c_plain = vec![0.0f32; m * n];
    engine.gemm(m, n, k, &a, &b, &mut c_plain);

    let packed = autogemm::PackedB::new(&plan, &b);
    let mut c_packed = vec![0.0f32; m * n];
    autogemm::gemm_prepacked(&plan, &a, &packed, &mut c_packed, 2);

    assert_eq!(c_plain, c_packed);
}

#[test]
fn batch_api_agrees_with_individual_calls() {
    let chip = ChipSpec::m2();
    let engine = autogemm::AutoGemm::new(chip.clone());
    let (m, n, k, items) = (8usize, 12usize, 16usize, 4usize);
    let plan = engine.plan(m, n, k);
    let a_store: Vec<Vec<f32>> =
        (0..items).map(|t| (0..m * k).map(|i| ((i + t) % 5) as f32).collect()).collect();
    let b_store: Vec<Vec<f32>> =
        (0..items).map(|t| (0..k * n).map(|i| ((i * 2 + t) % 7) as f32).collect()).collect();

    let mut batch = autogemm::GemmBatch::new(m, n, k);
    for t in 0..items {
        batch.push(&a_store[t], &b_store[t]);
    }
    let mut c_batch = vec![0.0f32; items * m * n];
    autogemm::gemm_batch(&plan, &batch, &mut c_batch, 2);

    for t in 0..items {
        let mut c_one = vec![0.0f32; m * n];
        engine.gemm(m, n, k, &a_store[t], &b_store[t], &mut c_one);
        assert_eq!(&c_batch[t * m * n..(t + 1) * m * n], &c_one[..], "item {t}");
    }
}
