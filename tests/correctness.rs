//! Cross-crate correctness: the full engine (tuner → DMT → packing →
//! micro-kernels) against the naive reference, natively and on the
//! functional simulator, across chips, shapes and thread counts —
//! the §V "relative error < 1e-6" verification.

use autogemm::AutoGemm;
use autogemm_arch::ChipSpec;
use autogemm_baselines::naive::{max_rel_error, naive_gemm};

fn data(m: usize, n: usize, k: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
    let f = |i: usize, s: u32| {
        (((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 31) as f32 - 15.0
    };
    let a = (0..m * k).map(|i| f(i, seed) * 0.125).collect();
    let b = (0..k * n).map(|i| f(i, seed ^ 0xdead) * 0.25).collect();
    (a, b)
}

fn check_native(engine: &AutoGemm, m: usize, n: usize, k: usize, threads: usize) {
    let (a, b) = data(m, n, k, 42);
    let mut c = vec![0.0f32; m * n];
    if threads == 1 {
        engine.gemm(m, n, k, &a, &b, &mut c);
    } else {
        engine.gemm_threaded(m, n, k, &a, &b, &mut c, threads);
    }
    let mut want = vec![0.0f32; m * n];
    naive_gemm(m, n, k, &a, &b, &mut want);
    let err = max_rel_error(&c, &want);
    assert!(err < 1e-5, "{m}x{n}x{k} t{threads}: rel err {err}");
}

#[test]
fn engine_matches_naive_across_shape_classes() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    // Small, tall-skinny, long-rectangular, awkward primes.
    for (m, n, k) in [
        (1, 4, 1),
        (8, 8, 8),
        (64, 64, 64),
        (26, 36, 64),
        (128, 24, 16),
        (16, 196, 32),
        (13, 20, 17),
        (31, 44, 29),
        (7, 52, 11),
    ] {
        check_native(&engine, m, n, k, 1);
    }
}

#[test]
fn engine_matches_naive_on_all_chips() {
    for chip in ChipSpec::all_evaluated() {
        let engine = AutoGemm::new(chip.clone());
        check_native(&engine, 26, 36, 32, 1);
        check_native(&engine, 48, 48, 48, 1);
    }
}

#[test]
fn threaded_engine_matches_naive() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    for threads in [2, 3, 4] {
        check_native(&engine, 64, 96, 32, threads);
    }
}

#[test]
fn every_baseline_matches_naive_on_shared_shapes() {
    let chip = ChipSpec::kp920();
    for baseline in autogemm_baselines::all_baselines() {
        let (m, n, k) = (32, 48, 24);
        if !baseline.supports(&chip, m, n, k) {
            continue;
        }
        let (a, b) = data(m, n, k, 7);
        let mut c = vec![0.0f32; m * n];
        autogemm_baselines::gemm_baseline(baseline, m, n, k, &chip, &a, &b, &mut c);
        let mut want = vec![0.0f32; m * n];
        naive_gemm(m, n, k, &a, &b, &mut want);
        let err = max_rel_error(&c, &want);
        assert!(err < 1e-5, "{}: rel err {err}", baseline.name());
    }
}

#[test]
fn simulated_kernels_match_native_numerics() {
    // The virtual-ISA kernels executed by the functional simulator must
    // agree bit-for-bit in structure with the native kernels' results
    // (both are sums of the same products in the same k-order).
    use autogemm_kernelgen::{MicroKernelSpec, MicroTile, PipelineOpts, Strides};
    let chip = ChipSpec::graviton2();
    for (mr, nr, kc) in [(5usize, 16usize, 24usize), (8, 8, 17), (2, 28, 9)] {
        let spec = MicroKernelSpec {
            tile: MicroTile::new(mr, nr),
            kc,
            sigma_lane: 4,
            accumulate: true,
            strides: Strides::Dynamic,
            opts: PipelineOpts::rotated(),
        };
        let (a, b) = data(mr, nr, kc, 3);
        let mut c_sim = vec![0.5f32; mr * nr];
        let c0 = c_sim.clone();
        autogemm_sim::run_micro_kernel(&spec, &chip, &a, &b, &mut c_sim, autogemm_sim::Warmth::L1);
        let mut want = c0;
        for i in 0..mr {
            for p in 0..kc {
                for j in 0..nr {
                    want[i * nr + j] += a[i * kc + p] * b[p * nr + j];
                }
            }
        }
        let err = max_rel_error(&c_sim, &want);
        assert!(err < 1e-4, "{mr}x{nr}x{kc}: {err}");
    }
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn random_shapes_are_correct(
            m in 1usize..48,
            n in 1usize..48,
            k in 1usize..48,
        ) {
            let engine = AutoGemm::new(ChipSpec::graviton2());
            let (a, b) = data(m, n, k, (m * 31 + n * 7 + k) as u32);
            let mut c = vec![0.0f32; m * n];
            engine.gemm(m, n, k, &a, &b, &mut c);
            let mut want = vec![0.0f32; m * n];
            naive_gemm(m, n, k, &a, &b, &mut want);
            prop_assert!(max_rel_error(&c, &want) < 1e-4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        /// The threaded panel-cache driver matches the naive reference for
        /// arbitrary shapes and thread counts — including thread counts
        /// (up to 8) far exceeding the block grid of small shapes, where
        /// surplus workers must drain an empty queue and exit.
        #[test]
        fn random_threaded_shapes_are_correct(
            m in 1usize..97,
            n in 1usize..97,
            k in 1usize..97,
            t_idx in 0usize..4,
        ) {
            let threads = [1usize, 2, 3, 8][t_idx];
            let engine = AutoGemm::new(ChipSpec::graviton2());
            let (a, b) = data(m, n, k, (m * 13 + n * 5 + k * 3 + threads) as u32);
            let mut c = vec![0.0f32; m * n];
            engine.gemm_threaded(m, n, k, &a, &b, &mut c, threads);
            let mut want = vec![0.0f32; m * n];
            naive_gemm(m, n, k, &a, &b, &mut want);
            prop_assert!(
                max_rel_error(&c, &want) < 1e-4,
                "{m}x{n}x{k} at {threads} threads: rel err {}",
                max_rel_error(&c, &want)
            );
        }

        /// Threaded execution is deterministic and bit-identical to the
        /// single-threaded result: the work queue changes which thread
        /// computes a block, never the FP order within one.
        #[test]
        fn thread_count_never_changes_bits(
            m in 1usize..64,
            n in 1usize..64,
            k in 1usize..64,
        ) {
            let chip = ChipSpec::graviton2();
            let plan = autogemm::ExecutionPlan::from_schedule(
                autogemm_tuner::tune(m, n, k, &chip),
                &chip,
            );
            let (a, b) = data(m, n, k, (m + n * 3 + k * 17) as u32);
            let mut c1 = vec![0.0f32; m * n];
            autogemm::native::gemm_with_plan(&plan, &a, &b, &mut c1, 1);
            for threads in [2usize, 3, 8] {
                let mut ct = vec![0.0f32; m * n];
                autogemm::native::gemm_with_plan(&plan, &a, &b, &mut ct, threads);
                prop_assert_eq!(&c1, &ct, "threads={} diverged", threads);
            }
        }
    }
}
