//! The fallible (`try_*`) API surface: structured errors instead of
//! panics, degenerate-shape early returns, the untouched-`C` guarantee,
//! and a seeded differential sweep against the naive oracle — all with
//! the `faultinject` feature off, so this suite also pins down that the
//! `Result` plumbing is bit-identical to the classic panicking path.

use autogemm::error::Operand;
use autogemm::{AutoGemm, GemmBatch, GemmError, PackedB};
use autogemm_arch::ChipSpec;
use autogemm_baselines::naive::{max_rel_error, naive_gemm};

/// Deterministic pseudo-random operand data (xorshift-ish hash).
fn data(m: usize, n: usize, k: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
    let f = |i: usize, s: u32| {
        (((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 31) as f32 - 15.0
    };
    let a = (0..m * k).map(|i| f(i, seed) * 0.125).collect();
    let b = (0..k * n).map(|i| f(i, seed ^ 0xbeef) * 0.25).collect();
    (a, b)
}

// ---------------------------------------------------------------------------
// Error variants
// ---------------------------------------------------------------------------

#[test]
fn slice_length_mismatches_name_the_operand() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = (8usize, 8usize, 8usize);
    let good_a = vec![0.0f32; m * k];
    let good_b = vec![0.0f32; k * n];
    let mut good_c = vec![0.0f32; m * n];

    let short_a = vec![0.0f32; m * k - 1];
    match engine.try_gemm(m, n, k, &short_a, &good_b, &mut good_c) {
        Err(GemmError::SliceLen { operand: Operand::A, expected, got, .. }) => {
            assert_eq!((expected, got), (m * k, m * k - 1));
        }
        other => panic!("expected SliceLen(A), got {other:?}"),
    }

    let short_b = vec![0.0f32; k * n - 3];
    let e = engine.try_gemm(m, n, k, &good_a, &short_b, &mut good_c).unwrap_err();
    assert!(matches!(e, GemmError::SliceLen { operand: Operand::B, .. }), "{e:?}");
    // Display is the same structured message the panicking wrapper uses.
    assert!(e.to_string().contains("must hold"), "{e}");

    let mut short_c = vec![0.0f32; m * n + 2];
    let e = engine.try_gemm(m, n, k, &good_a, &good_b, &mut short_c).unwrap_err();
    assert!(matches!(e, GemmError::SliceLen { operand: Operand::C, .. }), "{e:?}");
}

#[test]
fn overflow_adjacent_dims_error_before_allocating() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let a: Vec<f32> = vec![];
    let b: Vec<f32> = vec![];
    let mut c: Vec<f32> = vec![];
    // m*k overflows usize: reported as SizeOverflow, no allocation, no
    // tuning, no panic.
    let e = engine.try_gemm(usize::MAX, 2, 3, &a, &b, &mut c).unwrap_err();
    assert!(matches!(e, GemmError::SizeOverflow { .. }), "{e:?}");
    assert!(e.to_string().contains("overflows usize"), "{e}");
    // Same guard on the batch front door.
    let batch = GemmBatch::new(usize::MAX, usize::MAX, 1);
    let e = engine.try_gemm_batch(&batch, &mut c, 2).unwrap_err();
    assert!(matches!(e, GemmError::SizeOverflow { .. }), "{e:?}");
}

#[test]
fn prepacked_plan_mismatch_is_an_error() {
    let engine = AutoGemm::new(ChipSpec::m2());
    let plan_small = engine.plan(16, 16, 16);
    let plan_big = engine.plan(32, 32, 32);
    let b = vec![0.0f32; 16 * 16];
    let packed = PackedB::new(&plan_small, &b);
    let a = vec![0.0f32; 32 * 32];
    let mut c = vec![0.0f32; 32 * 32];
    let e = autogemm::try_gemm_prepacked(&plan_big, &a, &packed, &mut c, 1).unwrap_err();
    assert!(matches!(e, GemmError::PlanMismatch { .. }), "{e:?}");
    assert!(e.to_string().contains("different plan"), "{e}");
}

#[test]
fn classic_wrappers_panic_with_the_structured_message() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let a = vec![0.0f32; 3];
        let b = vec![0.0f32; 16];
        let mut c = vec![0.0f32; 16];
        engine.gemm(4, 4, 4, &a, &b, &mut c);
    }))
    .unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("must hold"), "wrapper panic message was {msg:?}");
}

// ---------------------------------------------------------------------------
// Untouched-C guarantee
// ---------------------------------------------------------------------------

#[test]
fn c_is_untouched_when_validation_fails() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = (12usize, 10usize, 8usize);
    let (a, _) = data(m, n, k, 7);
    let bad_b = vec![0.0f32; k * n - 1];
    let sentinel: Vec<f32> = (0..m * n).map(|i| i as f32 + 0.5).collect();
    let mut c = sentinel.clone();
    assert!(engine.try_gemm(m, n, k, &a, &bad_b, &mut c).is_err());
    assert_eq!(c, sentinel, "C must be untouched on a validation error");
    assert!(engine.try_gemm_threaded(m, n, k, &a, &bad_b, &mut c, 4).is_err());
    assert_eq!(c, sentinel);
}

#[test]
fn sgemm_validates_before_the_beta_pass() {
    let engine = AutoGemm::new(ChipSpec::kp920());
    let (m, n, k) = (9usize, 11usize, 6usize);
    let plan = engine.plan(m, n, k);
    let bad_a = vec![0.0f32; m * k + 1];
    let b = vec![0.0f32; k * n];
    let sentinel: Vec<f32> = (0..m * n).map(|i| i as f32).collect();
    let mut c = sentinel.clone();
    // β = 0.5 would scale C — but the bad A must be caught first.
    let r = autogemm::try_sgemm(
        &plan,
        1.0,
        autogemm::Op::NoTrans,
        &bad_a,
        autogemm::Op::NoTrans,
        &b,
        0.5,
        &mut c,
        2,
    );
    assert!(matches!(r, Err(GemmError::SliceLen { operand: Operand::A, .. })), "{r:?}");
    assert_eq!(c, sentinel, "C must not even be scaled on Err");
}

// ---------------------------------------------------------------------------
// Degenerate shapes
// ---------------------------------------------------------------------------

#[test]
fn zero_dim_gemm_early_returns() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    // m == 0 / n == 0: nothing to do, C is empty.
    let mut empty: Vec<f32> = vec![];
    engine.gemm(0, 5, 4, &[], &[0.0; 20], &mut empty);
    engine.gemm_threaded(7, 0, 4, &[0.0; 28], &[], &mut empty, 4);
    engine.try_gemm(0, 0, 0, &[], &[], &mut empty).unwrap();

    // k == 0: the product is the zero matrix, so C is zeroed.
    let (m, n) = (6usize, 9usize);
    let mut c: Vec<f32> = (0..m * n).map(|i| i as f32 + 1.0).collect();
    engine.gemm(m, n, 0, &[], &[], &mut c);
    assert!(c.iter().all(|&v| v == 0.0), "k == 0 must zero C");

    let mut c: Vec<f32> = (0..m * n).map(|i| -(i as f32)).collect();
    engine.try_gemm_threaded(m, n, 0, &[], &[], &mut c, 3).unwrap();
    assert!(c.iter().all(|&v| v == 0.0));
}

#[test]
fn zero_dim_traced_reports_the_shape() {
    let engine = AutoGemm::new(ChipSpec::m2());
    let mut c: Vec<f32> = vec![3.0; 4 * 5];
    let report = engine.try_gemm_traced(4, 5, 0, &[], &[], &mut c, 2).unwrap();
    assert_eq!((report.m, report.n, report.k), (4, 5, 0));
    assert!(c.iter().all(|&v| v == 0.0));
    let mut empty: Vec<f32> = vec![];
    let report = engine.try_gemm_traced(0, 5, 7, &[], &[0.0; 35], &mut empty, 1).unwrap();
    assert_eq!((report.m, report.n, report.k), (0, 5, 7));
}

#[test]
fn zero_dim_batch_zeroes_every_item() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n) = (3usize, 4usize);
    let mut batch = GemmBatch::new(m, n, 0);
    let a: Vec<f32> = vec![];
    let b: Vec<f32> = vec![];
    for _ in 0..5 {
        batch.push(&a, &b);
    }
    let mut c: Vec<f32> = (0..5 * m * n).map(|i| i as f32 + 1.0).collect();
    engine.try_gemm_batch(&batch, &mut c, 2).unwrap();
    assert!(c.iter().all(|&v| v == 0.0));
}

#[test]
fn zero_dim_transpose_paths() {
    let engine = AutoGemm::new(ChipSpec::kp920());
    let plan = engine.plan(5, 7, 0);
    let mut c: Vec<f32> = vec![2.0; 35];
    autogemm::try_gemm_op(&plan, autogemm::Op::Trans, autogemm::Op::NoTrans, &[], &[], &mut c, 2)
        .unwrap();
    assert!(c.iter().all(|&v| v == 0.0));
    // sgemm with k == 0 reduces to C = β·C.
    let mut c: Vec<f32> = vec![2.0; 35];
    autogemm::try_sgemm(
        &plan,
        1.0,
        autogemm::Op::NoTrans,
        &[],
        autogemm::Op::NoTrans,
        &[],
        0.5,
        &mut c,
        1,
    )
    .unwrap();
    assert!(c.iter().all(|&v| v == 1.0), "k == 0 sgemm must leave β·C");
}

// ---------------------------------------------------------------------------
// try_* matches the classic path bit-for-bit (feature off)
// ---------------------------------------------------------------------------

#[test]
fn try_gemm_is_bit_identical_to_gemm() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    for &(m, n, k) in &[(17usize, 23usize, 31usize), (64, 48, 32), (5, 128, 7)] {
        let (a, b) = data(m, n, k, 11);
        let mut c_classic = vec![0.0f32; m * n];
        engine.gemm(m, n, k, &a, &b, &mut c_classic);
        let mut c_try = vec![0.0f32; m * n];
        engine.try_gemm(m, n, k, &a, &b, &mut c_try).unwrap();
        assert_eq!(c_try, c_classic, "{m}x{n}x{k}: try path diverged");
        for threads in [2usize, 8] {
            let mut c_t_classic = vec![0.0f32; m * n];
            engine.gemm_threaded(m, n, k, &a, &b, &mut c_t_classic, threads);
            let mut c_t_try = vec![0.0f32; m * n];
            engine.try_gemm_threaded(m, n, k, &a, &b, &mut c_t_try, threads).unwrap();
            assert_eq!(c_t_try, c_t_classic, "{m}x{n}x{k} t{threads}");
        }
    }
}

// ---------------------------------------------------------------------------
// Seeded differential sweep vs the naive oracle
// ---------------------------------------------------------------------------

/// xorshift64 for shape generation.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn pick(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }
}

#[test]
fn differential_fuzz_against_naive() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let mut rng = Rng(0x5eed_cafe);
    // Hand-picked adversarial shapes: degenerate rows/columns, kernel
    // edge remainders (mr/nr in Table II are ≤ 8/ multiples of 4), and
    // shapes a naive size computation gets wrong by one.
    let mut shapes: Vec<(usize, usize, usize)> = vec![
        (1, 37, 1),
        (41, 1, 3),
        (1, 1, 129),
        (9, 13, 1),
        (7, 5, 3),
        (33, 47, 17),
        (8, 12, 16),
        (25, 4, 64),
    ];
    for _ in 0..12 {
        shapes.push((rng.pick(1, 70), rng.pick(1, 70), rng.pick(1, 70)));
    }
    for (i, &(m, n, k)) in shapes.iter().enumerate() {
        let (a, b) = data(m, n, k, i as u32);
        let mut want = vec![0.0f32; m * n];
        naive_gemm(m, n, k, &a, &b, &mut want);
        for threads in [1usize, 4] {
            let mut c = vec![0.0f32; m * n];
            engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads).unwrap();
            let err = max_rel_error(&c, &want);
            assert!(err < 1e-5, "{m}x{n}x{k} t{threads}: rel err {err}");
        }
    }
}

#[test]
fn engine_is_reusable_after_an_error() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = (19usize, 21usize, 15usize);
    let (a, b) = data(m, n, k, 3);
    let bad_a = vec![0.0f32; 2];
    let mut c = vec![0.0f32; m * n];
    assert!(engine.try_gemm(m, n, k, &bad_a, &b, &mut c).is_err());
    // The pool/schedule caches must be unharmed: the next call succeeds
    // and is correct.
    engine.try_gemm(m, n, k, &a, &b, &mut c).unwrap();
    let mut want = vec![0.0f32; m * n];
    naive_gemm(m, n, k, &a, &b, &mut want);
    assert!(max_rel_error(&c, &want) < 1e-5);
}
