//! Supervisor integration tests that need no fault injection: deadline
//! and cancellation semantics on clean runs, engine reusability after a
//! supervised stop, the resilient ladder's happy path, and the health
//! report of a healthy engine. The chaos suite (`faultinject` feature)
//! covers the faulting halves of the same contracts.

use autogemm::supervisor::{CancelToken, GemmOptions, WatchdogConfig};
use autogemm::{AutoGemm, GemmError, ResilientMode};
use autogemm_arch::ChipSpec;
use autogemm_baselines::naive::{max_rel_error, naive_gemm};
use std::time::Duration;

const SHAPE: (usize, usize, usize) = (40, 36, 24);

fn data(m: usize, n: usize, k: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
    let f = |i: usize, s: u32| {
        (((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 31) as f32 - 15.0
    };
    let a = (0..m * k).map(|i| f(i, seed) * 0.125).collect();
    let b = (0..k * n).map(|i| f(i, seed ^ 0xfa17) * 0.25).collect();
    (a, b)
}

fn oracle(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut want = vec![0.0f32; m * n];
    naive_gemm(m, n, k, a, b, &mut want);
    want
}

#[test]
fn far_future_deadline_is_bit_identical_to_the_plain_call() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 1);
    for threads in [1usize, 4] {
        let mut c_plain = vec![0.0f32; m * n];
        engine.try_gemm_threaded(m, n, k, &a, &b, &mut c_plain, threads).unwrap();
        let mut c_dl = vec![0.0f32; m * n];
        engine
            .try_gemm_deadline(m, n, k, &a, &b, &mut c_dl, threads, Duration::from_secs(3600))
            .unwrap();
        // Supervision changes when a run may stop, never what it computes.
        assert_eq!(c_dl, c_plain, "t{threads}");
    }
}

#[test]
fn an_already_expired_deadline_cancels_with_c_untouched() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 2);
    let sentinel: Vec<f32> = vec![-3.5; m * n];
    let mut c = sentinel.clone();
    let e = engine.try_gemm_deadline(m, n, k, &a, &b, &mut c, 2, Duration::ZERO).unwrap_err();
    match &e {
        GemmError::Cancelled { phase, blocks_done, .. } => {
            assert_eq!(*phase, "pack A");
            assert_eq!(*blocks_done, 0);
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert_eq!(c, sentinel, "expired deadline must stop before any C write");
    assert_eq!(engine.panel_pool().outstanding(), 0, "pool buffers leaked");
}

#[test]
fn a_cancelled_token_stops_the_run_and_reset_reuses_it() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 3);
    let tok = CancelToken::new();
    assert!(!tok.is_cancelled());
    tok.cancel();
    assert!(tok.is_cancelled());

    let opts = GemmOptions::new().threads(4).cancel(tok.clone());
    let mut c = vec![0.0f32; m * n];
    let e = engine.try_gemm_opts(m, n, k, &a, &b, &mut c, &opts).unwrap_err();
    assert!(matches!(e, GemmError::Cancelled { phase: "pack A", .. }), "{e:?}");
    assert_eq!(engine.panel_pool().outstanding(), 0);

    // One shared token cancels many calls; reset() opens the next epoch.
    tok.reset();
    assert!(!tok.is_cancelled());
    let mut c = vec![0.0f32; m * n];
    engine.try_gemm_opts(m, n, k, &a, &b, &mut c, &opts).unwrap();
    assert!(max_rel_error(&c, &oracle(m, n, k, &a, &b)) < 1e-5);
}

#[test]
fn the_watchdog_never_trips_on_a_healthy_run() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 4);
    // Default quiescence (250 ms) dwarfs any block on this shape: the
    // watchdog must observe steady heartbeats and stay silent.
    let opts = GemmOptions::new().threads(4).watchdog(WatchdogConfig::default());
    let mut c = vec![0.0f32; m * n];
    engine.try_gemm_opts(m, n, k, &a, &b, &mut c, &opts).unwrap();
    assert!(max_rel_error(&c, &oracle(m, n, k, &a, &b)) < 1e-5);
}

#[test]
fn batch_calls_honor_a_pre_cancelled_token_at_item_granularity() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = (10usize, 12usize, 8usize);
    let (a, b) = data(m, n, k, 5);
    let mut batch = autogemm::GemmBatch::new(m, n, k);
    for _ in 0..5 {
        batch.push(&a, &b);
    }
    let tok = CancelToken::new();
    tok.cancel();
    let mut c = vec![0.0f32; 5 * m * n];
    let opts = GemmOptions::new().threads(2).cancel(tok.clone());
    let e = engine.try_gemm_batch_opts(&batch, &mut c, &opts).unwrap_err();
    match &e {
        GemmError::Cancelled { phase, blocks_done, blocks_total } => {
            assert_eq!(*phase, "batch");
            assert_eq!(*blocks_done, 0);
            assert_eq!(*blocks_total, 5, "batch progress counts items");
        }
        other => panic!("expected Cancelled(batch), got {other:?}"),
    }
    // Reset + rerun: every item completes and matches the oracle.
    tok.reset();
    let mut c = vec![0.0f32; 5 * m * n];
    engine.try_gemm_batch_opts(&batch, &mut c, &opts).unwrap();
    let want = oracle(m, n, k, &a, &b);
    for i in 0..5 {
        assert!(max_rel_error(&c[i * m * n..(i + 1) * m * n], &want) < 1e-5, "item {i}");
    }
}

#[test]
fn resilient_happy_path_runs_once_as_requested() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 6);
    let mut c = vec![0.0f32; m * n];
    let r =
        engine.try_gemm_resilient(m, n, k, &a, &b, &mut c, &GemmOptions::new().threads(4)).unwrap();
    assert_eq!(r.attempts, 1);
    assert_eq!(r.mode, ResilientMode::AsRequested);
    assert!(max_rel_error(&c, &oracle(m, n, k, &a, &b)) < 1e-5);
}

#[test]
fn resilient_never_retries_a_cancellation() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 7);
    let tok = CancelToken::new();
    tok.cancel();
    let mut c = vec![0.0f32; m * n];
    let opts = GemmOptions::new().threads(4).cancel(tok);
    let e = engine.try_gemm_resilient(m, n, k, &a, &b, &mut c, &opts).unwrap_err();
    // Cancellation is the caller's intent, not a fault: one attempt only.
    assert!(matches!(e, GemmError::Cancelled { .. }), "{e:?}");
}

#[test]
fn a_fresh_engine_reports_every_breaker_path_closed() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let health = engine.health();
    assert_eq!(health.paths.len(), 5);
    assert!(health.all_closed());
    for name in
        ["simd_dispatch", "pool_alloc", "threaded_driver", "pool_submit", "verify_integrity"]
    {
        let p = health.path(name).unwrap_or_else(|| panic!("missing path {name}"));
        assert_eq!(p.state, "closed", "{name}");
        assert_eq!((p.total_faults, p.trips), (0, 0), "{name}");
    }
    // A healthy traced run keeps it that way, visible in the report.
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 8);
    let mut c = vec![0.0f32; m * n];
    let report = engine.try_gemm_traced(m, n, k, &a, &b, &mut c, 2).unwrap();
    assert!(report.health.all_closed());
    assert!(report.health.transitions.is_empty());
    assert_eq!(report.fallbacks.breaker_reroutes, 0);
}

#[test]
fn half_open_admits_exactly_one_probe_and_reroutes_the_rest() {
    use autogemm::supervisor::{Breaker, BreakerConfig, BreakerPath, BreakerState, ObservedFaults};
    let cfg = BreakerConfig { fail_threshold: 1, open_cooldown: 1, close_after: 1 };
    let b = Breaker::new(cfg);
    let path = BreakerPath::ThreadedDriver;

    // Trip the path, serve the one-cooldown Open call, reach HalfOpen.
    let adm = b.admit();
    let obs = ObservedFaults::default();
    obs.set(path);
    let _ = b.record(&obs, adm.reroute, adm.probe, false);
    assert_eq!(b.state(path), BreakerState::Open);

    // The first HalfOpen admission claims the single probe slot...
    let first = b.admit();
    assert!(first.probe[path.index()], "first caller probes the fast path");
    assert!(!first.reroute[path.index()]);
    assert_eq!(b.state(path), BreakerState::HalfOpen);

    // ...and every overlapping admission reroutes while it is in flight.
    for i in 0..8 {
        let adm = b.admit();
        assert!(adm.reroute[path.index()], "caller {i} must reroute, not probe");
        assert!(!adm.probe[path.index()]);
        let ev = b.record(&ObservedFaults::default(), adm.reroute, adm.probe, false);
        assert!(ev.is_empty(), "rerouted calls never advance the probe count");
    }
    assert_eq!(b.state(path), BreakerState::HalfOpen, "still waiting on the probe");

    // Only the probe's own outcome closes the breaker.
    let ev = b.record(&ObservedFaults::default(), first.reroute, first.probe, false);
    assert_eq!(ev, vec!["threaded_driver: half_open -> closed"]);
    assert_eq!(b.state(path), BreakerState::Closed);
}

#[test]
fn racing_half_open_callers_yield_one_probe_and_a_cancelled_probe_releases_the_slot() {
    use autogemm::supervisor::{Breaker, BreakerConfig, BreakerPath, BreakerState, ObservedFaults};
    let cfg = BreakerConfig { fail_threshold: 1, open_cooldown: 1, close_after: 100 };
    let b = Breaker::new(cfg);
    let path = BreakerPath::PoolSubmit;
    let adm = b.admit();
    let obs = ObservedFaults::default();
    obs.set(path);
    let _ = b.record(&obs, adm.reroute, adm.probe, false);
    assert_eq!(b.state(path), BreakerState::Open);

    // Eight threads race the Open->HalfOpen transition: exactly one may
    // come out holding the probe, everyone else must be rerouted.
    let admissions: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8).map(|_| s.spawn(|| b.admit())).collect();
        handles.into_iter().map(|h| h.join().expect("no panic")).collect()
    });
    let probes = admissions.iter().filter(|a| a.probe[path.index()]).count();
    let reroutes = admissions.iter().filter(|a| a.reroute[path.index()]).count();
    assert_eq!(probes, 1, "exactly one concurrent caller probes");
    assert_eq!(reroutes, 7, "all others reroute to the safe path");
    assert_eq!(b.state(path), BreakerState::HalfOpen);

    // The probing call ends neutrally (e.g. cancelled): the slot must be
    // released without counting as a clean probe, so the next admission
    // probes again instead of the path wedging half-open forever.
    for adm in &admissions {
        let neutral = adm.probe[path.index()];
        let ev = b.record(&ObservedFaults::default(), adm.reroute, adm.probe, neutral);
        assert!(ev.is_empty());
    }
    assert_eq!(b.state(path), BreakerState::HalfOpen);
    let next = b.admit();
    assert!(next.probe[path.index()], "released slot re-arms the probe");
    assert!(!next.reroute[path.index()]);
}
