//! Worker-pool runtime integration suite (ISSUE 7).
//!
//! The threaded hot path must submit sections to the persistent pool —
//! never spawn OS threads per call — while staying bit-identical to the
//! scoped-spawn baseline it replaced. These tests run without features:
//! the pool is the default execution path.

use autogemm::native::try_gemm_with_plan_supervised;
use autogemm::supervisor::Supervision;
use autogemm::{AutoGemm, PanelPool, Runtime};
use autogemm_arch::ChipSpec;
use autogemm_baselines::naive::{max_rel_error, naive_gemm};
use proptest::prelude::*;

fn data(m: usize, n: usize, k: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
    let f = |i: usize, s: u32| {
        (((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 31) as f32 - 15.0
    };
    let a = (0..m * k).map(|i| f(i, seed) * 0.125).collect();
    let b = (0..k * n).map(|i| f(i, seed ^ 0x9001) * 0.25).collect();
    (a, b)
}

fn oracle(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut want = vec![0.0f32; m * n];
    naive_gemm(m, n, k, a, b, &mut want);
    want
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Pooled execution is bit-identical to the scoped-spawn baseline:
    /// both drain the same atomic block cursor with slot-agnostic
    /// bodies, so only the dispatch mechanism differs.
    #[test]
    fn pooled_matches_scoped_spawn_bit_for_bit(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..40,
        threads in 2usize..5,
        seed in 0u32..1000,
    ) {
        let engine = AutoGemm::new(ChipSpec::graviton2());
        let plan = engine.plan_multicore(m, n, k, threads);
        let (a, b) = data(m, n, k, seed);

        let pool = PanelPool::new();
        let mut c_pooled = vec![0.0f32; m * n];
        try_gemm_with_plan_supervised(
            &plan, &a, &b, &mut c_pooled, threads, &pool, &Supervision::none(),
        ).unwrap();

        let pool = PanelPool::new();
        let mut c_scoped = vec![0.0f32; m * n];
        try_gemm_with_plan_supervised(
            &plan, &a, &b, &mut c_scoped, threads, &pool,
            &Supervision::none().with_spawn_baseline(),
        ).unwrap();

        prop_assert_eq!(&c_pooled, &c_scoped, "pool vs scoped diverged");
        prop_assert!(max_rel_error(&c_pooled, &oracle(m, n, k, &a, &b)) < 1e-4);
    }
}

/// Several OS threads hammer one shared engine concurrently; every
/// submission serializes through the same pool and every result must
/// match the oracle.
#[test]
fn concurrent_submissions_to_one_engine_are_all_correct() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let shapes = [(26usize, 36usize, 64usize), (40, 12, 24), (7, 33, 16), (64, 64, 8)];
    std::thread::scope(|scope| {
        for (caller, &(m, n, k)) in shapes.iter().enumerate() {
            let engine = &engine;
            scope.spawn(move || {
                let (a, b) = data(m, n, k, caller as u32 + 100);
                let want = oracle(m, n, k, &a, &b);
                for rep in 0..8 {
                    let mut c = vec![0.0f32; m * n];
                    engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 2).unwrap();
                    assert!(max_rel_error(&c, &want) < 1e-4, "caller {caller} rep {rep} diverged");
                }
            });
        }
    });
    let stats = engine.pool_stats();
    assert_eq!(engine.runtime().alive_workers(), stats.workers as usize);
}

/// Reads this process's thread count from /proc (Linux CI hosts). Falls
/// back to 0 where /proc is absent, which disables the stability assert.
fn os_thread_count() -> u64 {
    std::fs::read_to_string("/proc/self/stat")
        .ok()
        .and_then(|s| {
            // Field 20 (1-indexed) after the comm field, which may hold
            // spaces — skip past the closing paren first.
            let rest = &s[s.rfind(')')? + 2..];
            rest.split_whitespace().nth(17)?.parse::<u64>().ok()
        })
        .unwrap_or(0)
}

/// The tentpole's core claim: a burst of threaded calls on a warmed-up
/// dedicated runtime creates zero new OS threads and leaks zero pool
/// workers — dispatch is wake/park, not spawn/join.
#[test]
fn threaded_burst_spawns_no_os_threads_and_leaks_no_workers() {
    let rt = Runtime::with_workers(1);
    let engine = AutoGemm::new(ChipSpec::graviton2()).with_runtime(rt.clone());
    let (m, n, k) = (26, 36, 64);
    let (a, b) = data(m, n, k, 7);
    let want = oracle(m, n, k, &a, &b);

    // Warm up: first submission lazily spawns the pool workers (and the
    // plan cache tunes the shape).
    let mut c = vec![0.0f32; m * n];
    engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 2).unwrap();
    let workers = rt.stats().workers as usize;
    assert_eq!(rt.alive_workers(), workers, "pool failed to spawn");

    let threads_before = os_thread_count();
    let submissions_before = rt.stats().submissions;
    for _ in 0..32 {
        let mut c = vec![0.0f32; m * n];
        engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 2).unwrap();
        assert!(max_rel_error(&c, &want) < 1e-4);
    }
    let stats = rt.stats();
    assert!(
        stats.submissions >= submissions_before + 32,
        "burst must route through the pool: {} -> {}",
        submissions_before,
        stats.submissions
    );
    assert_eq!(rt.alive_workers(), workers, "pool leaked or lost a worker");
    if threads_before > 0 {
        assert_eq!(os_thread_count(), threads_before, "threaded calls must not create OS threads");
    }
}

/// Oversubscribed requests are clamped to the runtime's capacity and the
/// clamp is recorded — never an error, never an oversubscribed spawn.
#[test]
fn oversubscribed_thread_requests_clamp_and_record() {
    let rt = Runtime::with_workers(1);
    let engine = AutoGemm::new(ChipSpec::graviton2()).with_runtime(rt.clone());
    let (m, n, k) = (40, 36, 24);
    let (a, b) = data(m, n, k, 8);
    let clamped_before = rt.stats().threads_clamped;

    let mut c = vec![0.0f32; m * n];
    engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 16).unwrap();
    assert!(max_rel_error(&c, &oracle(m, n, k, &a, &b)) < 1e-4);
    assert!(
        rt.stats().threads_clamped > clamped_before,
        "a 16-thread request on a capacity-{} runtime must record a clamp",
        rt.capacity()
    );
    assert!(16 > rt.capacity(), "test premise: the host cannot grant 16 workers");
}

/// Traced reports carry the pool section (schema v4) and it survives a
/// JSON round trip.
#[test]
fn traced_report_carries_pool_stats() {
    let rt = Runtime::with_workers(1);
    let engine = AutoGemm::new(ChipSpec::graviton2()).with_runtime(rt);
    let (m, n, k) = (26, 36, 64);
    let (a, b) = data(m, n, k, 9);
    let mut c = vec![0.0f32; m * n];
    let report = engine.try_gemm_traced(m, n, k, &a, &b, &mut c, 2).unwrap();
    assert!(report.pool.submissions >= 1, "threaded traced call must submit to the pool");
    assert_eq!(report.pool.workers as usize + 1, engine.runtime().capacity());

    let text = report.to_json();
    assert!(text.contains("\"pool\":"), "v4 report must serialize the pool section");
    let back = autogemm::GemmReport::from_json(&text).unwrap();
    assert_eq!(back.pool, report.pool);
}

/// Histogram shards merge deterministically under genuinely concurrent
/// pool submissions: several OS threads hammer one engine, each call
/// landing latency samples from a different thread-local shard hint —
/// the merged snapshot must account for every call exactly once, and
/// its quantiles must be consistent (monotone, bounded by the recorded
/// extremes' buckets).
#[test]
fn concurrent_submissions_merge_into_one_consistent_histogram() {
    use autogemm::telemetry::Counter;
    let rt = Runtime::with_workers(1);
    let engine = AutoGemm::new(ChipSpec::graviton2()).with_runtime(rt);
    let shapes = [(26usize, 36usize, 64usize), (40, 12, 24), (64, 64, 16)];
    let reps = 12u64;
    std::thread::scope(|scope| {
        for (caller, &(m, n, k)) in shapes.iter().enumerate() {
            let engine = &engine;
            scope.spawn(move || {
                let (a, b) = data(m, n, k, caller as u32 + 500);
                let want = oracle(m, n, k, &a, &b);
                for _ in 0..reps {
                    let mut c = vec![0.0f32; m * n];
                    engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 2).unwrap();
                    assert!(max_rel_error(&c, &want) < 1e-4);
                }
            });
        }
    });
    let calls = shapes.len() as u64 * reps;
    let snap = engine.metrics();
    assert_eq!(snap.counter(Counter::Calls), calls, "every concurrent call counted once");
    assert_eq!(snap.call_latency_ns.count, calls, "every call left one latency sample");
    assert_eq!(
        snap.call_latency_ns.buckets.iter().sum::<u64>(),
        calls,
        "shard merge preserves the total bucket mass"
    );
    let (p50, p95, p99) =
        (snap.call_latency_ns.p50(), snap.call_latency_ns.p95(), snap.call_latency_ns.p99());
    assert!(p50 > 0, "latencies are nonzero");
    assert!(p50 <= p95 && p95 <= p99, "quantiles must be monotone: {p50}/{p95}/{p99}");
    assert!(p99 <= snap.call_latency_ns.quantile(1.0), "p99 bounded by the max bucket");
    assert_eq!(snap.in_flight, 0, "all calls retired");
    // The merge is stable: two snapshots with no traffic in between are
    // identical (the read path has no side effects).
    assert_eq!(engine.metrics(), snap);
}

/// The process-wide default runtime is shared: two default engines
/// observe the same pool.
#[test]
fn default_engines_share_the_global_runtime() {
    let e1 = AutoGemm::new(ChipSpec::graviton2());
    let e2 = AutoGemm::new(ChipSpec::graviton2());
    assert!(std::sync::Arc::ptr_eq(e1.runtime(), e2.runtime()));
}
