//! Integration tests for the admission-controlled service layer
//! (`autogemm::service`): bounded-queue rejection, per-tenant quotas,
//! deadline shedding, in-queue expiry, close semantics, error wrapping,
//! and the schema-v6 `service` report section. The chaos suite
//! (`faultinject` feature) covers the same layer under injected faults.

use autogemm::supervisor::GemmOptions;
use autogemm::{
    GemmError, GemmReport, GemmService, RejectReason, ServiceConfig, ShedPolicy, TenantId,
    TenantQuota,
};
use autogemm_arch::ChipSpec;
use autogemm_baselines::naive::{max_rel_error, naive_gemm};
use std::time::{Duration, Instant};

const SHAPE: (usize, usize, usize) = (40, 36, 24);

/// Big enough that one call holds its execution slot for a while in a
/// debug build, so tests can deterministically build a backlog behind it.
const BIG: (usize, usize, usize) = (320, 320, 320);

fn data(m: usize, n: usize, k: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
    let f = |i: usize, s: u32| {
        (((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 31) as f32 - 15.0
    };
    let a = (0..m * k).map(|i| f(i, seed) * 0.125).collect();
    let b = (0..k * n).map(|i| f(i, seed ^ 0xfa17) * 0.25).collect();
    (a, b)
}

fn oracle(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut want = vec![0.0f32; m * n];
    naive_gemm(m, n, k, a, b, &mut want);
    want
}

/// Poll `f` until it holds or `timeout` elapses; returns the final state.
fn wait_until(timeout: Duration, f: impl Fn() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    f()
}

fn service_counter(svc: &GemmService, name: &str) -> u64 {
    let snap = svc.metrics().snapshot();
    autogemm::telemetry::metrics::Counter::ALL
        .iter()
        .find(|c| c.name() == name)
        .map(|c| snap.counter(*c))
        .unwrap_or(0)
}

#[test]
fn plain_submit_matches_the_oracle_and_settles_to_idle() {
    let svc = GemmService::new(ChipSpec::graviton2(), ServiceConfig::default());
    let tenant = TenantId::new("alice");
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 1);
    let mut c = vec![0.0f32; m * n];
    let reply = svc
        .submit(&tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new())
        .expect("clean submit succeeds");
    assert!(max_rel_error(&c, &oracle(m, n, k, &a, &b)) < 1e-5);
    assert!(reply.queue_wait < Duration::from_secs(5));
    assert_eq!(svc.queued(), 0);
    assert_eq!(svc.in_flight(), 0);
    assert_eq!(service_counter(&svc, "service_admitted_total"), 1);
    assert_eq!(service_counter(&svc, "service_rejected_total"), 0);
    let snap = svc.metrics().snapshot();
    assert_eq!(snap.queue_wait_ns.count, 1, "one queue wait recorded");
    assert_eq!(snap.in_flight, 0, "gauge returns to zero");
}

#[test]
fn full_queue_rejects_immediately_with_queue_full() {
    let depth = 2usize;
    let cfg = ServiceConfig {
        queue_depth: depth,
        max_in_flight: 1,
        shed: ShedPolicy { enabled: false, ..ShedPolicy::default() },
        ..ServiceConfig::default()
    };
    let svc = GemmService::new(ChipSpec::graviton2(), cfg);
    let tenant = TenantId::new("burst");
    let (bm, bn, bk) = BIG;
    let (ba, bb) = data(bm, bn, bk, 7);

    let svc = &svc;
    std::thread::scope(|s| {
        // One big call occupies the single execution slot...
        let holder = s.spawn(|| {
            let mut c = vec![0.0f32; bm * bn];
            svc.submit(&tenant, bm, bn, bk, &ba, &bb, &mut c, &GemmOptions::new())
        });
        assert!(
            wait_until(Duration::from_secs(10), || svc.in_flight() == 1),
            "holder call never started executing"
        );

        // ...then `depth` callers fill the queue behind it...
        let waiters: Vec<_> = (0..depth)
            .map(|i| {
                let tenant = tenant.clone();
                s.spawn(move || {
                    let (m, n, k) = SHAPE;
                    let (a, b) = data(m, n, k, 100 + i as u32);
                    let mut c = vec![0.0f32; m * n];
                    svc.submit(&tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new())
                })
            })
            .collect();
        assert!(
            wait_until(Duration::from_secs(10), || svc.queued() == depth),
            "backlog never formed (queued={})",
            svc.queued()
        );

        // ...and the next submit is rejected synchronously, naming the depth.
        let (m, n, k) = SHAPE;
        let (a, b) = data(m, n, k, 999);
        let mut c = vec![0.0f32; m * n];
        match svc.submit(&tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new()) {
            Err(GemmError::Rejected { reason: RejectReason::QueueFull, queue_depth }) => {
                assert_eq!(queue_depth, depth);
            }
            other => panic!("expected QueueFull rejection, got {other:?}"),
        }

        holder.join().expect("no panic").expect("holder call succeeds");
        for w in waiters {
            w.join().expect("no panic").expect("queued call succeeds after drain");
        }
    });

    assert_eq!(svc.queued(), 0);
    assert_eq!(svc.in_flight(), 0);
    assert_eq!(service_counter(svc, "service_admitted_total"), 1 + depth as u64);
    assert_eq!(service_counter(svc, "service_rejected_total"), 1);
    assert_eq!(svc.metrics().snapshot().in_flight, 0);
}

#[test]
fn tenant_queue_share_caps_one_tenants_backlog() {
    let cfg = ServiceConfig {
        queue_depth: 8,
        max_in_flight: 1,
        shed: ShedPolicy { enabled: false, ..ShedPolicy::default() },
        ..ServiceConfig::default()
    };
    let svc = GemmService::new(ChipSpec::graviton2(), cfg);
    // greedy may hold at most 25% of the 8-slot queue = 2 waiters.
    let greedy =
        svc.add_tenant("greedy", TenantQuota { max_queue_share: 0.25, ..TenantQuota::default() });
    let polite = svc.add_tenant("polite", TenantQuota::default());
    let (bm, bn, bk) = BIG;
    let (ba, bb) = data(bm, bn, bk, 3);

    let svc = &svc;
    std::thread::scope(|s| {
        let holder = s.spawn(|| {
            let mut c = vec![0.0f32; bm * bn];
            svc.submit(&polite, bm, bn, bk, &ba, &bb, &mut c, &GemmOptions::new())
        });
        assert!(wait_until(Duration::from_secs(10), || svc.in_flight() == 1));

        let greedy_waiters: Vec<_> = (0..2)
            .map(|i| {
                let greedy = greedy.clone();
                s.spawn(move || {
                    let (m, n, k) = SHAPE;
                    let (a, b) = data(m, n, k, 40 + i);
                    let mut c = vec![0.0f32; m * n];
                    svc.submit(&greedy, m, n, k, &a, &b, &mut c, &GemmOptions::new())
                })
            })
            .collect();
        assert!(wait_until(Duration::from_secs(10), || svc.queued() == 2));

        // Greedy's third waiter exceeds its share and bounces; polite still fits.
        let (m, n, k) = SHAPE;
        let (a, b) = data(m, n, k, 77);
        let mut c = vec![0.0f32; m * n];
        match svc.submit(&greedy, m, n, k, &a, &b, &mut c, &GemmOptions::new()) {
            Err(GemmError::Rejected { reason: RejectReason::TenantQueueShare, .. }) => {}
            other => panic!("expected TenantQueueShare rejection, got {other:?}"),
        }
        let polite_waiter = s.spawn(|| {
            let (m, n, k) = SHAPE;
            let (a, b) = data(m, n, k, 78);
            let mut c = vec![0.0f32; m * n];
            svc.submit(&polite, m, n, k, &a, &b, &mut c, &GemmOptions::new())
        });

        holder.join().expect("no panic").expect("holder succeeds");
        for w in greedy_waiters {
            w.join().expect("no panic").expect("greedy waiter drains");
        }
        polite_waiter.join().expect("no panic").expect("polite waiter drains");
    });
    assert_eq!(service_counter(svc, "service_rejected_total"), 1);
    assert_eq!(svc.in_flight(), 0);
}

#[test]
fn provably_unmeetable_deadline_is_shed_before_queueing() {
    let svc = GemmService::new(ChipSpec::graviton2(), ServiceConfig::default());
    let tenant = TenantId::new("hurried");
    // 256^3 needs > 30 us even at the chip's theoretical peak; 50 ns of
    // budget is provably hopeless, so the roofline floor alone sheds it.
    let (m, n, k) = (256usize, 256usize, 256usize);
    let (a, b) = data(m, n, k, 5);
    let mut c = vec![0.0f32; m * n];
    let opts = GemmOptions::new().deadline(Duration::from_nanos(50));
    match svc.submit(&tenant, m, n, k, &a, &b, &mut c, &opts) {
        Err(GemmError::Rejected { reason: RejectReason::DeadlineUnmeetable, .. }) => {}
        other => panic!("expected DeadlineUnmeetable shed, got {other:?}"),
    }
    assert_eq!(service_counter(&svc, "service_shed_total"), 1);
    assert_eq!(service_counter(&svc, "service_admitted_total"), 0);
    assert_eq!(svc.queued(), 0, "shed calls never occupy a queue slot");

    // The same call with shedding disabled is admitted (and then the
    // engine's own deadline supervisor governs it).
    let cfg = ServiceConfig {
        shed: ShedPolicy { enabled: false, ..ShedPolicy::default() },
        ..ServiceConfig::default()
    };
    let svc2 = GemmService::new(ChipSpec::graviton2(), cfg);
    // A budget long enough to survive queue wait but far too short for the
    // call: with shedding off it must be admitted and left to the engine's
    // own deadline supervisor (never pre-rejected on the estimate).
    let opts = GemmOptions::new().deadline(Duration::from_millis(5));
    let r = svc2.submit(&tenant, m, n, k, &a, &b, &mut c, &opts);
    assert!(
        !matches!(r, Err(GemmError::Rejected { reason: RejectReason::DeadlineUnmeetable, .. })),
        "shedding off must not pre-reject; got {r:?}"
    );
    assert_eq!(service_counter(&svc2, "service_admitted_total"), 1);
}

#[test]
fn service_default_deadline_applies_when_the_call_names_none() {
    let cfg = ServiceConfig {
        default_deadline: Some(Duration::from_nanos(50)),
        ..ServiceConfig::default()
    };
    let svc = GemmService::new(ChipSpec::graviton2(), cfg);
    let tenant = TenantId::new("defaulted");
    let (m, n, k) = (256usize, 256usize, 256usize);
    let (a, b) = data(m, n, k, 6);
    let mut c = vec![0.0f32; m * n];
    match svc.submit(&tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new()) {
        Err(GemmError::Rejected { reason: RejectReason::DeadlineUnmeetable, .. }) => {}
        other => panic!("expected the config default deadline to shed, got {other:?}"),
    }
}

#[test]
fn a_deadline_that_expires_in_the_queue_is_dropped_there() {
    let cfg = ServiceConfig {
        queue_depth: 4,
        max_in_flight: 1,
        shed: ShedPolicy { enabled: false, ..ShedPolicy::default() },
        ..ServiceConfig::default()
    };
    let svc = GemmService::new(ChipSpec::graviton2(), cfg);
    let slow = TenantId::new("slow");
    let timely = TenantId::new("timely");
    let (bm, bn, bk) = BIG;
    let (ba, bb) = data(bm, bn, bk, 9);

    let svc = &svc;
    std::thread::scope(|s| {
        let holder = s.spawn(|| {
            let mut c = vec![0.0f32; bm * bn];
            svc.submit(&slow, bm, bn, bk, &ba, &bb, &mut c, &GemmOptions::new())
        });
        assert!(wait_until(Duration::from_secs(10), || svc.in_flight() == 1));

        // Tiny-deadline call behind the big one: its budget evaporates
        // while queued, so it must come back ExpiredInQueue (the holder
        // runs far longer than 20 ms even on a fast machine).
        let (m, n, k) = SHAPE;
        let (a, b) = data(m, n, k, 11);
        let mut c = vec![0.0f32; m * n];
        let opts = GemmOptions::new().deadline(Duration::from_millis(20));
        match svc.submit(&timely, m, n, k, &a, &b, &mut c, &opts) {
            Err(GemmError::Rejected { reason: RejectReason::ExpiredInQueue, .. }) => {}
            other => panic!("expected ExpiredInQueue, got {other:?}"),
        }
        holder.join().expect("no panic").expect("holder succeeds");
    });
    assert_eq!(service_counter(svc, "service_expired_in_queue_total"), 1);
    assert_eq!(svc.queued(), 0, "expired waiter left no queue residue");
    assert_eq!(svc.in_flight(), 0);
}

#[test]
fn close_rejects_new_and_queued_work_without_stranding_waiters() {
    let cfg = ServiceConfig {
        queue_depth: 4,
        max_in_flight: 1,
        shed: ShedPolicy { enabled: false, ..ShedPolicy::default() },
        ..ServiceConfig::default()
    };
    let svc = GemmService::new(ChipSpec::graviton2(), cfg);
    let tenant = TenantId::new("t");
    let (bm, bn, bk) = BIG;
    let (ba, bb) = data(bm, bn, bk, 13);

    let svc = &svc;
    std::thread::scope(|s| {
        let holder = s.spawn(|| {
            let mut c = vec![0.0f32; bm * bn];
            svc.submit(&tenant, bm, bn, bk, &ba, &bb, &mut c, &GemmOptions::new())
        });
        assert!(wait_until(Duration::from_secs(10), || svc.in_flight() == 1));
        let waiter = s.spawn(|| {
            let (m, n, k) = SHAPE;
            let (a, b) = data(m, n, k, 14);
            let mut c = vec![0.0f32; m * n];
            svc.submit(&tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new())
        });
        assert!(wait_until(Duration::from_secs(10), || svc.queued() == 1));

        svc.close();
        match waiter.join().expect("no panic") {
            Err(GemmError::Rejected { reason: RejectReason::ServiceClosed, .. }) => {}
            other => panic!("queued waiter must see ServiceClosed, got {other:?}"),
        }
        // In-flight work still completes; new submits bounce.
        holder.join().expect("no panic").expect("in-flight call finishes after close");
        let (m, n, k) = SHAPE;
        let (a, b) = data(m, n, k, 15);
        let mut c = vec![0.0f32; m * n];
        match svc.submit(&tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new()) {
            Err(GemmError::Rejected { reason: RejectReason::ServiceClosed, .. }) => {}
            other => panic!("post-close submit must see ServiceClosed, got {other:?}"),
        }
    });
    assert!(svc.is_closed());
    assert_eq!(svc.in_flight(), 0);
}

#[test]
fn execution_errors_are_wrapped_naming_the_tenant_and_chain_to_the_cause() {
    let svc = GemmService::new(ChipSpec::graviton2(), ServiceConfig::default());
    let tenant = TenantId::new("bob");
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 21);
    let mut c = vec![0.0f32; m * n - 1]; // wrong on purpose
    let err = svc
        .submit(&tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new())
        .expect_err("short c slice must fail");
    match &err {
        GemmError::InService { tenant: t, source } => {
            assert_eq!(t, "bob");
            assert!(matches!(**source, GemmError::SliceLen { .. }), "cause is {source:?}");
        }
        other => panic!("expected InService wrapper, got {other:?}"),
    }
    // std::error::Error::source exposes the chain.
    let cause = std::error::Error::source(&err).expect("wrapper has a source");
    assert!(cause.downcast_ref::<GemmError>().is_some());
    // An execution failure still releases its slot and counts as admitted.
    assert_eq!(svc.in_flight(), 0);
    assert_eq!(service_counter(&svc, "service_admitted_total"), 1);
}

#[test]
fn traced_submit_stamps_a_schema_v6_service_section_that_round_trips() {
    let svc = GemmService::new(ChipSpec::graviton2(), ServiceConfig::default());
    let tenant = TenantId::new("alice");
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k, 31);
    let mut c = vec![0.0f32; m * n];
    let (_reply, report) = svc
        .submit_traced(&tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new())
        .expect("traced submit succeeds");
    let section = report.service.as_ref().expect("service section stamped");
    assert_eq!(section.admitted, 1);
    assert_eq!(section.offered, 1);
    assert_eq!(section.queue_wait_ns.count, 1);
    assert_eq!(section.in_flight, 0);
    assert!(section.shed_ratio == 0.0);

    let text = report.to_json();
    assert!(text.contains("\"service\":{"), "service section serialized");
    let back = GemmReport::from_json(&text).expect("round trip parses");
    assert_eq!(back.service, report.service);

    // report_section agrees with the stamped view's counters.
    let live = svc.report_section();
    assert_eq!(live.admitted, 1);
    assert_eq!(live.queued, 0);
    assert_eq!(live.in_flight, 0);
}
