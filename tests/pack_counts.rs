//! Regression guard for the panel cache: packing work must be amortized.
//!
//! The cached driver packs each A panel `(bi, kb)` and each B panel
//! `(kb, bj)` exactly once per GEMM — `tm·tk` + `tk·tn` packs — while the
//! historical per-block path packs `2·tm·tn·tk` times. These tests pin
//! both counts via the process-global counters in `autogemm::packing`.
//!
//! NOTE: the counters are process-global, so every test in this file runs
//! in ONE `#[test]` function (integration-test files are separate
//! processes, but tests within a binary run concurrently). Do not split
//! these into multiple `#[test]`s.
//!
//! The global counters are deprecated shims kept for exactly this guard;
//! new code should read the per-call `GemmReport` from the traced drivers
//! instead (race-free across concurrent GEMMs) — see `tests/telemetry.rs`.
#![allow(deprecated)]

use autogemm::packing::counters;
use autogemm::{ExecutionPlan, PackedB, PanelPool};
use autogemm_arch::ChipSpec;
use autogemm_tuner::tune;

fn plan_for(m: usize, n: usize, k: usize) -> ExecutionPlan {
    let chip = ChipSpec::graviton2();
    ExecutionPlan::from_schedule(tune(m, n, k, &chip), &chip)
}

fn data(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>) {
    let a = (0..m * k).map(|i| ((i * 13 + 5) % 23) as f32 - 11.0).collect();
    let b = (0..k * n).map(|i| ((i * 7 + 2) % 19) as f32 - 9.0).collect();
    (a, b)
}

#[test]
fn pack_counts_are_amortized() {
    // --- Cached driver: (tm + tn)·tk packs per GEMM, at any thread count.
    for (m, n, k, threads) in [(64, 196, 64, 1), (64, 196, 64, 4), (52, 72, 32, 3), (8, 8, 8, 16)] {
        let plan = plan_for(m, n, k);
        let (tm, tn, tk) = plan.grid();
        let (a, b) = data(m, n, k);
        let mut c = vec![0.0f32; m * n];
        counters::reset();
        autogemm::native::gemm_with_plan(&plan, &a, &b, &mut c, threads);
        assert_eq!(
            counters::a_packs(),
            (tm * tk) as u64,
            "{m}x{n}x{k} t{threads}: A panels must be packed exactly tm*tk = {}*{} times",
            tm,
            tk
        );
        assert_eq!(
            counters::b_packs(),
            (tk * tn) as u64,
            "{m}x{n}x{k} t{threads}: B panels must be packed exactly tk*tn = {}*{} times",
            tk,
            tn
        );
    }

    // --- The historical repack path really does O(tm·tn·tk) packs of
    // each operand (kept as the benchmark baseline; this documents the
    // contrast the panel cache eliminates).
    {
        let (m, n, k) = (64, 196, 64);
        let plan = plan_for(m, n, k);
        let (tm, tn, tk) = plan.grid();
        let (a, b) = data(m, n, k);
        let mut c = vec![0.0f32; m * n];
        counters::reset();
        autogemm::native::gemm_with_plan_repack(&plan, &a, &b, &mut c, 2);
        assert_eq!(counters::a_packs(), (tm * tn * tk) as u64);
        assert_eq!(counters::b_packs(), (tm * tn * tk) as u64);
    }

    // --- Offline mode: PackedB::new pays tk·tn B packs once; each
    // prepacked GEMM afterwards packs only A (tm·tk), and B never again.
    {
        let (m, n, k) = (48, 96, 32);
        let plan = plan_for(m, n, k);
        let (tm, tn, tk) = plan.grid();
        let (a, b) = data(m, n, k);
        counters::reset();
        let packed = PackedB::new(&plan, &b);
        assert_eq!(counters::b_packs(), (tk * tn) as u64, "offline B pack cost");
        let pool = PanelPool::new();
        for _ in 0..3 {
            counters::reset();
            let mut c = vec![0.0f32; m * n];
            autogemm::offline::gemm_prepacked_pooled(&plan, &a, &packed, &mut c, 2, &pool);
            assert_eq!(counters::a_packs(), (tm * tk) as u64);
            assert_eq!(counters::b_packs(), 0, "prepacked B must never be re-packed");
        }
    }

    // --- Batch with a shared B: one offline pack of B for the whole
    // batch (tk·tn), plus tm·tk A packs per item.
    {
        let (m, n, k, items) = (8usize, 12usize, 16usize, 5usize);
        let plan = plan_for(m, n, k);
        let (tm, tn, tk) = plan.grid();
        let a_store: Vec<Vec<f32>> =
            (0..items).map(|t| (0..m * k).map(|i| ((i + t) % 9) as f32 - 4.0).collect()).collect();
        let b_shared: Vec<f32> = (0..k * n).map(|i| (i % 11) as f32 - 5.0).collect();
        let mut batch = autogemm::GemmBatch::new(m, n, k);
        for a in &a_store {
            batch.push(a, &b_shared);
        }
        let mut c = vec![0.0f32; items * m * n];
        counters::reset();
        autogemm::gemm_batch(&plan, &batch, &mut c, 2);
        assert_eq!(
            counters::b_packs(),
            (tk * tn) as u64,
            "batch sharing one B must pack it exactly once"
        );
        assert_eq!(counters::a_packs(), (items * tm * tk) as u64);
    }
}
