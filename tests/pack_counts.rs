//! Regression guard for the panel cache: packing work must be amortized.
//!
//! The cached driver packs each A panel `(bi, kb)` and each B panel
//! `(kb, bj)` exactly once per GEMM — `tm·tk` + `tk·tn` packs — while the
//! historical per-block path packs `2·tm·tn·tk` times. These tests pin
//! both counts through the session-stats API: the traced drivers'
//! per-call `GemmReport` (`packs.a_packs` / `packs.b_packs`) and, for
//! paths without a traced twin, an explicitly installed telemetry
//! session scope. Both are race-free across concurrent GEMMs, so unlike
//! the removed process-global `packing::counters` the tests below can be
//! independent `#[test]`s.
//!
//! The counters only tick with the `telemetry` feature armed (ci.sh runs
//! this file under the telemetry config); without it the whole file
//! compiles to nothing.
#![cfg(feature = "telemetry")]

use std::sync::Arc;

use autogemm::native::{gemm_with_plan_repack, gemm_with_plan_traced};
use autogemm::telemetry::{session, Session};
use autogemm::{ExecutionPlan, PackedB, PanelPool};
use autogemm_arch::ChipSpec;
use autogemm_tuner::tune;

fn plan_for(m: usize, n: usize, k: usize) -> ExecutionPlan {
    let chip = ChipSpec::graviton2();
    ExecutionPlan::from_schedule(tune(m, n, k, &chip), &chip)
}

fn data(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>) {
    let a = (0..m * k).map(|i| ((i * 13 + 5) % 23) as f32 - 11.0).collect();
    let b = (0..k * n).map(|i| ((i * 7 + 2) % 19) as f32 - 9.0).collect();
    (a, b)
}

/// Count packs done by `f` on the calling thread (single-threaded paths
/// without a traced twin: offline prepack, the repack baseline).
fn counted<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
    let sess = Arc::new(Session::new());
    let out = session::with_session(&sess, f);
    let stats = sess.take();
    (out, stats.a_packs, stats.b_packs)
}

#[test]
fn cached_driver_packs_each_panel_once() {
    // (tm + tn)·tk packs per GEMM, at any thread count — read from the
    // traced driver's own report, which merges every worker's tally.
    for (m, n, k, threads) in [(64, 196, 64, 1), (64, 196, 64, 4), (52, 72, 32, 3), (8, 8, 8, 16)] {
        let plan = plan_for(m, n, k);
        let (tm, tn, tk) = plan.grid();
        let (a, b) = data(m, n, k);
        let mut c = vec![0.0f32; m * n];
        let pool = PanelPool::new();
        let report = gemm_with_plan_traced(&plan, &a, &b, &mut c, threads, &pool);
        assert_eq!(
            report.packs.a_packs,
            (tm * tk) as u64,
            "{m}x{n}x{k} t{threads}: A panels must be packed exactly tm*tk = {tm}*{tk} times"
        );
        assert_eq!(
            report.packs.b_packs,
            (tk * tn) as u64,
            "{m}x{n}x{k} t{threads}: B panels must be packed exactly tk*tn = {tk}*{tn} times"
        );
    }
}

#[test]
fn repack_baseline_packs_per_block() {
    // The historical repack path really does O(tm·tn·tk) packs of each
    // operand (kept as the benchmark baseline; this documents the
    // contrast the panel cache eliminates). Single-threaded so every
    // pack lands on the calling thread's session scope.
    let (m, n, k) = (64, 196, 64);
    let plan = plan_for(m, n, k);
    let (tm, tn, tk) = plan.grid();
    let (a, b) = data(m, n, k);
    let mut c = vec![0.0f32; m * n];
    let ((), a_packs, b_packs) = counted(|| gemm_with_plan_repack(&plan, &a, &b, &mut c, 1));
    assert_eq!(a_packs, (tm * tn * tk) as u64);
    assert_eq!(b_packs, (tm * tn * tk) as u64);
}

#[test]
fn offline_prepacked_b_is_never_repacked() {
    // PackedB::new pays tk·tn B packs once; each prepacked GEMM
    // afterwards packs only A (tm·tk), and B never again.
    let (m, n, k) = (48, 96, 32);
    let plan = plan_for(m, n, k);
    let (tm, tn, tk) = plan.grid();
    let (a, b) = data(m, n, k);
    let (packed, a0, b0) = counted(|| PackedB::new(&plan, &b));
    assert_eq!(b0, (tk * tn) as u64, "offline B pack cost");
    assert_eq!(a0, 0);
    let pool = PanelPool::new();
    for _ in 0..3 {
        let mut c = vec![0.0f32; m * n];
        let ((), a_packs, b_packs) = counted(|| {
            autogemm::offline::gemm_prepacked_pooled(&plan, &a, &packed, &mut c, 1, &pool)
        });
        assert_eq!(a_packs, (tm * tk) as u64);
        assert_eq!(b_packs, 0, "prepacked B must never be re-packed");
    }
}

#[test]
fn batch_with_shared_b_packs_it_once() {
    // One offline pack of B for the whole batch (tk·tn), done upfront on
    // the calling thread. A single-threaded batch drains every item on
    // the caller too (the pool runtime hands nothing off at threads=1),
    // so each item's A panels are packed exactly once — items·tm·tk in
    // this thread's session scope — and the shared B never re-packs.
    let (m, n, k, items) = (8usize, 12usize, 16usize, 5usize);
    let plan = plan_for(m, n, k);
    let (tm, tn, tk) = plan.grid();
    let a_store: Vec<Vec<f32>> =
        (0..items).map(|t| (0..m * k).map(|i| ((i + t) % 9) as f32 - 4.0).collect()).collect();
    let b_shared: Vec<f32> = (0..k * n).map(|i| (i % 11) as f32 - 5.0).collect();
    let mut batch = autogemm::GemmBatch::new(m, n, k);
    for a in &a_store {
        batch.push(a, &b_shared);
    }
    let mut c = vec![0.0f32; items * m * n];
    let ((), a_packs, b_packs) = counted(|| autogemm::gemm_batch(&plan, &batch, &mut c, 1));
    assert_eq!(b_packs, (tk * tn) as u64, "batch sharing one B must pack it exactly once");
    assert_eq!(
        a_packs,
        (items * tm * tk) as u64,
        "single-threaded batch drains items on the caller, packing each item's A once"
    );
    // The batch output must still match item-by-item plan-level runs.
    for (i, a) in a_store.iter().enumerate() {
        let mut c_ref = vec![0.0f32; m * n];
        autogemm::native::gemm_with_plan(&plan, a, &b_shared, &mut c_ref, 1);
        assert_eq!(&c[i * m * n..(i + 1) * m * n], &c_ref[..], "batch item {i}");
    }
}

#[test]
fn elided_pack_phase_does_no_pack_work() {
    // The engine's elision heuristic on a pack-dominated shape: L16-L20
    // ResNet-ish n (49 columns) tunes to a single column block
    // (tn = 1), so the A panels cannot be reused and the engine streams
    // A unpacked — zero A packs, and the report says so. (B keeps its
    // pack here: n = 49 has a lane tail, and only the padded panel keeps
    // the right-edge tiles on the vector kernels.)
    let engine = autogemm::AutoGemm::new(ChipSpec::graviton2());
    let (m, n, k) = (64, 49, 64);
    let (a, b) = data(m, n, k);
    let mut c = vec![0.0f32; m * n];
    let report = engine.gemm_traced(m, n, k, &a, &b, &mut c, 1);
    assert_eq!(report.dispatch.route, "block");
    // The report's routing must be exactly what the heuristic decides
    // for this grid.
    let (tm, tn) = (m / report.mc, n / report.nc);
    let routing = autogemm_perfmodel::route_packing(m, n, k, tm, tn);
    assert!(!routing.pack_a, "tn = {tn}: single-use A panels must elide on this shape");
    assert_eq!(report.dispatch.packed_a, routing.pack_a, "A routing must follow the heuristic");
    assert_eq!(report.dispatch.packed_b, routing.pack_b, "B routing must follow the heuristic");
    if !report.dispatch.packed_a {
        assert_eq!(report.packs.a_packs, 0, "elided A pack phase must do no pack work");
    }
    if !report.dispatch.packed_b {
        assert_eq!(report.packs.b_packs, 0, "elided B pack phase must do no pack work");
    }
    // Whatever the routing, the output must match the always-packed
    // plan-level driver bit for bit.
    let plan = engine.plan(m, n, k);
    let mut c_ref = vec![0.0f32; m * n];
    autogemm::native::gemm_with_plan(&plan, &a, &b, &mut c_ref, 1);
    assert_eq!(c, c_ref);
}
