//! The paper's headline results, asserted end-to-end on the simulator.
//! Each test names the table/figure it guards; EXPERIMENTS.md records the
//! measured numbers next to the paper's.

use autogemm::AutoGemm;
use autogemm_arch::ChipSpec;
use autogemm_baselines::{simulate_baseline, Baseline};

/// Table I / Fig 8: near-peak small-GEMM efficiency at M=N=K=64.
#[test]
fn small_gemm_near_peak_on_every_chip() {
    // Paper: 97.6 / 98.3 / 98.4 / 96.5 / 93.2 %.
    let floors =
        [("kp920", 0.90), ("graviton2", 0.95), ("altra", 0.95), ("m2", 0.95), ("a64fx", 0.85)];
    for (id, floor) in floors {
        let chip = ChipSpec::by_id(id).unwrap();
        let eff = AutoGemm::new(chip).simulate(64, 64, 64, 1).efficiency;
        assert!(eff > floor, "{id}: 64³ efficiency {eff:.3} below {floor}");
    }
}

/// Table I: autoGEMM leads every library on the small benchmark.
#[test]
fn table1_autogemm_leads_at_64cubed() {
    let chip = ChipSpec::kp920();
    let auto = AutoGemm::new(chip.clone()).simulate(64, 64, 64, 1).efficiency;
    for b in autogemm_baselines::all_baselines() {
        if let Some(r) = simulate_baseline(b, 64, 64, 64, &chip, 1) {
            assert!(r.efficiency < auto, "{} {:.3} !< {auto:.3}", b.name(), r.efficiency);
        }
    }
}

/// Fig 8: at 128³ on the KP920, LibShalom's hand-written prefetching wins
/// over autoGEMM (§V-C) — the one case the paper concedes.
#[test]
fn fig8_libshalom_wins_at_128_on_kp920() {
    let chip = ChipSpec::kp920();
    let auto = AutoGemm::new(chip.clone()).simulate(128, 128, 128, 1).gflops;
    let shalom = simulate_baseline(Baseline::LibShalom, 128, 128, 128, &chip, 1).unwrap().gflops;
    assert!(
        shalom > auto,
        "paper landmark: LibShalom ({shalom:.1}) should beat autoGEMM ({auto:.1}) at 128³ on KP920"
    );
}

/// Fig 8 shape: tiny matrices show the largest autoGEMM advantage
/// (1.5-2x over LIBXSMM/LibShalom).
#[test]
fn fig8_tiny_matrices_show_large_speedup() {
    let chip = ChipSpec::graviton2();
    let engine = AutoGemm::new(chip.clone());
    for s in [8usize, 16, 24] {
        let auto = engine.simulate(s, s, s, 1).gflops;
        if let Some(x) = simulate_baseline(Baseline::Libxsmm, s, s, s, &chip, 1) {
            assert!(
                auto > 1.5 * x.gflops,
                "{s}³: autoGEMM {auto:.1} not ≥1.5x LIBXSMM {:.1}",
                x.gflops
            );
        }
    }
}

/// Fig 9: single-core irregular speedups over OpenBLAS and Eigen on the
/// ResNet-50 layers (paper: avg 1.3x and 1.5x).
#[test]
fn fig9_single_core_speedups() {
    let chip = ChipSpec::graviton2();
    let engine = AutoGemm::new(chip.clone()).with_offline_packing();
    let mut vs_ob = Vec::new();
    // A representative subset (full sweep lives in the fig9 binary).
    for layer in autogemm_workloads::resnet50_table_v().into_iter().step_by(4) {
        let auto = engine.simulate(layer.m, layer.n, layer.k, 1).gflops;
        let ob = simulate_baseline(Baseline::OpenBlas, layer.m, layer.n, layer.k, &chip, 1)
            .unwrap()
            .gflops;
        vs_ob.push(auto / ob);
    }
    let avg = vs_ob.iter().sum::<f64>() / vs_ob.len() as f64;
    assert!(avg > 1.05, "avg speedup vs OpenBLAS {avg:.2} (paper: 1.3x)");
}

/// Fig 11: the A64FX scales far worse than the NEON chips (paper: 30.3%
/// parallel efficiency vs 83-98% elsewhere).
#[test]
fn fig11_a64fx_scaling_collapses() {
    let (m, n, k) = (64, 12544, 147);
    let eff_at_full = |chip: ChipSpec| {
        let engine = AutoGemm::new(chip.clone());
        let plan = engine.plan_multicore(m, n, k, chip.cores);
        let t1 = engine.simulate_with_plan(&plan, 1).seconds;
        let tn = engine.simulate_with_plan(&plan, chip.cores).seconds;
        t1 / tn / chip.cores as f64
    };
    let a64 = eff_at_full(ChipSpec::a64fx());
    let grav = eff_at_full(ChipSpec::graviton2());
    assert!(a64 < 0.5, "A64FX parallel efficiency {a64:.2} should collapse");
    assert!(grav > 0.9, "Graviton2 parallel efficiency {grav:.2} should stay high");
}

/// Fig 9 (lower) / §V-C: the multi-core k_c = K constraint makes large-K
/// layers lose efficiency relative to a similar-flops small-K layer.
#[test]
fn multicore_large_k_layers_dip() {
    let chip = ChipSpec::kp920();
    let engine = AutoGemm::new(chip.clone());
    // L10 (K=512) vs L7 (K=1152): same M, N.
    let small_k = engine.simulate(128, 784, 512, chip.cores);
    let large_k = engine.simulate(128, 784, 1152, chip.cores);
    // The dip shows as lower efficiency for the K=1152 layer (its whole
    // reduction must stay in one block).
    assert!(
        large_k.efficiency <= small_k.efficiency * 1.10,
        "large-K {:.3} vs small-K {:.3}",
        large_k.efficiency,
        small_k.efficiency
    );
}

/// Fig 12: T_other is invariant across GEMM backends and autoGEMM shrinks
/// T_GEMM on every model.
#[test]
fn fig12_end_to_end_wins() {
    use autogemm_workloads::tnn::*;
    use autogemm_workloads::DnnModel;
    let chip = ChipSpec::graviton2();
    let ob = BaselineBackend { baseline: Baseline::OpenBlas };
    let auto = AutoGemmBackend::new(chip.clone());
    for model in [DnnModel::MobileNetV1, DnnModel::SqueezeNet] {
        let reference = reference_gemm_seconds(model, &ob, &chip, 4).unwrap();
        let t_ob = run_model(model, &ob, reference, &chip, 4).unwrap();
        let t_auto = run_model(model, &auto, reference, &chip, 4).unwrap();
        assert_eq!(t_ob.t_other, t_auto.t_other);
        assert!(t_auto.t_gemm < t_ob.t_gemm, "{}: autoGEMM T_GEMM should shrink", model.name());
    }
}

/// Fig 5: the DMT worked example — fewer tiles than the static strategies
/// and (on low-σ_AI hardware) no low-AI tiles.
#[test]
fn fig5_dmt_worked_example() {
    use autogemm_kernelgen::MicroTile;
    use autogemm_perfmodel::ModelOpts;
    use autogemm_tiling::*;
    let opts = ModelOpts { rotate: true, fused: true };
    let ob = plan_openblas(26, 36, MicroTile::new(5, 16));
    let xs = plan_libxsmm(26, 36, MicroTile::new(5, 16), 4);
    let dmt = plan_dmt(26, 36, 64, &ChipSpec::graviton2(), opts);
    assert_eq!(ob.tile_count(), 18);
    assert_eq!(xs.tile_count(), 18);
    assert!(dmt.tile_count() <= 14, "paper: 13 tiles, got {}", dmt.tile_count());
    assert_eq!(dmt.low_ai_count(&ChipSpec::graviton2()), 0);
}
