//! Watch the auto-tuner work: the pruned search space (§IV-B/C), the cost
//! model's ranking, the boosted-stumps surrogate and the annealer — our
//! stand-in for the paper's TVM/AutoTVM workflow.
//!
//! ```sh
//! cargo run --release --example tuning_session [M N K]
//! ```

use autogemm_arch::ChipSpec;
use autogemm_tuner::{anneal, schedule_cost, AnnealConfig, SearchSpace};

fn main() {
    let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let (m, n, k) = match args.as_slice() {
        [m, n, k] => (*m, *n, *k),
        _ => (128, 784, 256), // Table V L6-like
    };
    let chip = ChipSpec::graviton2();
    let space = SearchSpace::new(m, n, k, &chip);
    println!(
        "search space for {m}x{n}x{k} on {}: {} block candidates x 120 loop orders x 3 packings = {} points",
        chip.name,
        space.block_candidates.len(),
        space.unpruned_size()
    );
    let pruned: Vec<_> = space.pruned_candidates().collect();
    println!(
        "model pruning keeps {} candidates ({}x reduction)\n",
        pruned.len(),
        space.unpruned_size() / pruned.len().max(1)
    );

    // Rank the pruned candidates with the Eqn 13 cost model.
    let mut scored: Vec<_> = pruned.iter().map(|s| (schedule_cost(s, &chip).total(), s)).collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    println!("top 5 candidates by the pruning cost model:");
    for (cost, s) in scored.iter().take(5) {
        println!(
            "  block {:>3}x{:<4}x{:<3} packing {:<8} -> {:>12.0} projected cycles",
            s.mc,
            s.nc,
            s.kc,
            format!("{:?}", s.packing),
            cost
        );
    }

    // Run the surrogate-guided annealer over the same space.
    let cfg = AnnealConfig::default();
    let best = anneal(&space, &chip, &cfg);
    let best_cost = schedule_cost(&best, &chip).total();
    println!(
        "\nannealer (boosted-stumps surrogate, {} rounds x {} steps) found:",
        cfg.rounds, cfg.steps_per_round
    );
    println!(
        "  block {}x{}x{} packing {:?} -> {:.0} projected cycles",
        best.mc, best.nc, best.kc, best.packing, best_cost
    );
    println!(
        "  vs exhaustive-pruned best {:.0} cycles ({:+.1}%)",
        scored[0].0,
        (best_cost / scored[0].0 - 1.0) * 100.0
    );
}
