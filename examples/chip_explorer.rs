//! Explore how the same GEMM behaves across the five modelled Arm chips:
//! peaks, σ_AI thresholds, rooflines, and what the tuner picks on each —
//! the performance-portability story of the paper's introduction.
//!
//! ```sh
//! cargo run --release --example chip_explorer [M N K]
//! ```

use autogemm::AutoGemm;
use autogemm_arch::ChipSpec;
use autogemm_perfmodel::roofline::{gemm_operational_intensity, Roofline};

fn main() {
    let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let (m, n, k) = match args.as_slice() {
        [m, n, k] => (*m, *n, *k),
        _ => (64, 3136, 64), // Table V L2 by default
    };
    let ai = gemm_operational_intensity(m, n, k);
    println!("GEMM {m}x{n}x{k} — operational intensity {ai:.2} flop/byte\n");
    println!(
        "{:<14} {:>6} {:>8} {:>7} {:>9} {:>8} {:>8} {:>14} {:>7}",
        "chip", "lanes", "sigmaAI", "peak/c", "roofline", "GFLOPS", "eff", "block", "tiles"
    );

    for chip in ChipSpec::all_evaluated() {
        let engine = AutoGemm::new(chip.clone());
        let plan = engine.plan(m, n, k);
        let report = engine.simulate(m, n, k, 1);
        let roof = Roofline::single_core(&chip);
        println!(
            "{:<14} {:>6} {:>8.1} {:>7.1} {:>9.1} {:>8.1} {:>7.1}% {:>14} {:>7}",
            chip.name,
            chip.sigma_lane(),
            chip.sigma_ai,
            chip.peak_gflops_core(),
            roof.attainable(ai),
            report.gflops,
            report.efficiency * 100.0,
            format!("{}x{}x{}", plan.schedule.mc, plan.schedule.nc, plan.schedule.kc),
            plan.block_plan.tile_count(),
        );
    }

    println!("\nNote how the SVE chip (A64FX, 16 lanes) blocks differently from the");
    println!("NEON chips, and how sigma_AI steers DMT's choice of micro-tiles.");
}
