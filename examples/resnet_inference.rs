//! Run the 20 irregular ResNet-50 GEMMs (Table V) through autoGEMM and the
//! comparison baselines, then the end-to-end TNN-style pipeline — the Fig 9
//! and Fig 12 workloads as a library consumer would drive them.
//!
//! ```sh
//! cargo run --release --example resnet_inference
//! ```

use autogemm::AutoGemm;
use autogemm_arch::ChipSpec;
use autogemm_baselines::{simulate_baseline, Baseline};
use autogemm_workloads::tnn::{
    reference_gemm_seconds, run_model, AutoGemmBackend, BaselineBackend,
};
use autogemm_workloads::{resnet50_table_v, DnnModel};

fn main() {
    let chip = ChipSpec::graviton2();
    let engine = AutoGemm::new(chip.clone()).with_offline_packing();

    println!("ResNet-50 layers on {} (single core, simulated GFLOPS):\n", chip.name);
    println!(
        "{:<6} {:>16} {:>10} {:>10} {:>9}",
        "layer", "shape", "autoGEMM", "OpenBLAS", "speedup"
    );
    let mut speedups = Vec::new();
    for layer in resnet50_table_v() {
        let auto = engine.simulate(layer.m, layer.n, layer.k, 1);
        let ob = simulate_baseline(Baseline::OpenBlas, layer.m, layer.n, layer.k, &chip, 1)
            .expect("OpenBLAS supports all shapes");
        let s = auto.gflops / ob.gflops;
        speedups.push(s);
        println!(
            "{:<6} {:>16} {:>10.1} {:>10.1} {:>8.2}x",
            layer.name(),
            format!("{}x{}x{}", layer.m, layer.n, layer.k),
            auto.gflops,
            ob.gflops,
            s
        );
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let max = speedups.iter().cloned().fold(0.0f64, f64::max);
    println!("\naverage speedup {avg:.2}x, max {max:.2}x (paper: 1.3x avg, 1.9x max vs OpenBLAS)");

    // End-to-end inference (Fig 12): full ResNet-50, all cores.
    let threads = chip.cores;
    let ob_backend = BaselineBackend { baseline: Baseline::OpenBlas };
    let auto_backend = AutoGemmBackend::new(chip.clone());
    let reference =
        reference_gemm_seconds(DnnModel::ResNet50, &ob_backend, &chip, threads).expect("reference");
    let t_ob = run_model(DnnModel::ResNet50, &ob_backend, reference, &chip, threads).unwrap();
    let t_auto = run_model(DnnModel::ResNet50, &auto_backend, reference, &chip, threads).unwrap();
    println!(
        "\nend-to-end ResNet-50 on {} threads: OpenBLAS {:.2} ms -> autoGEMM {:.2} ms ({:.2}x)",
        threads,
        t_ob.total() * 1e3,
        t_auto.total() * 1e3,
        t_ob.total() / t_auto.total()
    );
}
