//! Inspect an auto-generated micro-kernel: the emitted AArch64-style
//! assembly, its instruction bookkeeping, its analytic cycle projection
//! (Eqns 4–11) and its simulated cycles — the §III pipeline in one view.
//!
//! ```sh
//! cargo run --release --example kernel_inspector [mr nr kc]
//! ```

use autogemm_arch::ChipSpec;
use autogemm_arch::InstrClass;
use autogemm_kernelgen::{generate, MicroKernelSpec, MicroTile, PipelineOpts, Strides};
use autogemm_perfmodel::{projected_cycles, ModelOpts};
use autogemm_sim::{run_micro_kernel, Warmth};

fn main() {
    let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let (mr, nr, kc) = match args.as_slice() {
        [mr, nr, kc] => (*mr, *nr, *kc),
        _ => (5, 16, 8),
    };
    let chip = ChipSpec::idealized();
    let tile = MicroTile::new(mr, nr);
    println!(
        "micro-kernel {mr}x{nr} at k_c={kc}: AI_max = {:.2}, {} registers used, {} spare\n",
        tile.ai_max(),
        tile.registers_used(4),
        tile.spare_registers(4)
    );

    for rotate in [false, true] {
        let spec = MicroKernelSpec {
            tile,
            kc,
            sigma_lane: 4,
            accumulate: true,
            strides: Strides::Dynamic,
            opts: PipelineOpts { rotate, prefetch: true },
        };
        let prog = generate(&spec, &chip);
        let a = vec![1.0f32; mr * kc];
        let b = vec![1.0f32; kc * nr];
        let mut c = vec![0.0f32; mr * nr];
        let sim = run_micro_kernel(&spec, &chip, &a, &b, &mut c, Warmth::L1);
        let model = projected_cycles(tile, kc, &chip, ModelOpts { rotate, fused: false });
        println!(
            "{}: {} instructions ({} fmla / {} ldr / {} str), model {:.0} cy, simulated {} cy",
            spec.name(),
            prog.dynamic_len(),
            prog.count_class(InstrClass::Fma),
            prog.count_class(InstrClass::Load),
            prog.count_class(InstrClass::Store),
            model,
            sim.stats.cycles,
        );
    }

    // Print the full assembly of the basic kernel.
    let spec = MicroKernelSpec {
        tile,
        kc,
        sigma_lane: 4,
        accumulate: true,
        strides: Strides::Dynamic,
        opts: PipelineOpts::basic(),
    };
    println!("\n--- generated assembly (basic variant) ---\n{}", generate(&spec, &chip).render());
}
