//! Quickstart: multiply two matrices with autoGEMM, natively and on the
//! modelled chip.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use autogemm::AutoGemm;
use autogemm_arch::ChipSpec;

fn main() {
    // Target one of the five modelled Arm chips (Table IV).
    let chip = ChipSpec::graviton2();
    let engine = AutoGemm::new(chip.clone());

    // An irregular shape: C(26x36) = A(26x64) · B(64x36).
    let (m, n, k) = (26, 36, 64);
    let a: Vec<f32> = (0..m * k).map(|i| ((i % 13) as f32 - 6.0) * 0.5).collect();
    let b: Vec<f32> = (0..k * n).map(|i| ((i % 7) as f32 - 3.0) * 0.25).collect();
    let mut c = vec![0.0f32; m * n];

    // 1. Native execution on this machine (auto-tuned schedule, DMT tiling,
    //    packed panels, portable micro-kernels).
    engine.gemm(m, n, k, &a, &b, &mut c);

    // Verify against the naive reference.
    let mut want = vec![0.0f32; m * n];
    autogemm_baselines::naive_gemm(m, n, k, &a, &b, &mut want);
    let err = autogemm_baselines::naive::max_rel_error(&c, &want);
    println!("native GEMM: C[0]={:.3}, max rel err vs naive = {err:.2e}", c[0]);
    assert!(err < 1e-5);

    // 2. Cycle-level simulation on the modelled Graviton2 — the numbers the
    //    paper's figures are built from.
    let report = engine.simulate(m, n, k, 1);
    println!(
        "simulated on {}: {:.2} GFLOPS, {:.1}% of single-core peak ({:?} packing)",
        chip.name,
        report.gflops,
        report.efficiency * 100.0,
        report.packing
    );

    // 3. What the tuner decided.
    let plan = engine.plan(m, n, k);
    println!(
        "tuned schedule: cache block {}x{}x{}, {} micro-tiles per block, loop order {:?}",
        plan.schedule.mc,
        plan.schedule.nc,
        plan.schedule.kc,
        plan.block_plan.tile_count(),
        plan.schedule.order
    );
    println!("\nblock tiling (DMT, Algorithm 1):\n{}", plan.block_plan.ascii_art());
}
