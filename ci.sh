#!/usr/bin/env bash
# Local CI gate. Run from the repository root:
#
#   ./ci.sh          # tier-1 build+test, rustfmt, clippy
#   ./ci.sh quick    # tier-1 only (skip fmt/clippy)
#
# All dependencies resolve to the path-based stubs in shims/, so the gate
# runs fully offline; CARGO_NET_OFFLINE keeps cargo from ever consulting a
# registry even when one is configured.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: test =="
cargo test -q

if [[ "${1:-}" == "quick" ]]; then
    echo "CI quick gate passed."
    exit 0
fi

echo "== scalar-fallback SIMD config =="
# Exercise the portable array backend of the SIMD lane layer: the same
# kernels and property tests must pass with the arch intrinsics compiled
# out (what non-NEON/non-SSE targets get).
cargo test -q -p autogemm --features force-scalar
cargo test -q -p autogemm-repro --features autogemm/force-scalar --test simd_kernels

echo "== telemetry config =="
# Tier-1 runs with the telemetry feature off (timer API compiled to
# no-ops); this config arms the clocks and session hooks and re-runs the
# core suite plus the integration guards that assert live timings and
# traced-vs-untraced bit-identity.
cargo test -q -p autogemm --features telemetry
cargo test -q -p autogemm-repro --features telemetry --test telemetry --test pack_counts

echo "== faultinject config =="
# Arm the deterministic fault-injection probes and run the chaos suite:
# every injection site × action × thread count must come back as a
# structured GemmError or recover bit-identical to the oracle. The core
# suite re-runs under the feature to prove the probes are behaviorally
# inert while disarmed.
cargo test -q -p autogemm --features faultinject
cargo test -q -p autogemm --features faultinject,telemetry
cargo test -q -p autogemm-repro --features faultinject --test chaos --test fallible_api --test supervisor

echo "== output-integrity config =="
# The always-compiled Freivalds verification layer. tests/verify.rs
# proves the detection bound (every above-tolerance corruption caught
# within the round budget, zero clean false positives) and verdict
# determinism across thread counts; re-running it with the injection
# probes compiled in proves the verifier itself is fault-plan-agnostic.
# The injected-corruption story (KernelCompute + CorruptOutput across
# block/gemv/unpacked routes, sampling cadence, quarantine, verified
# re-execution) runs in the chaos suite above.
cargo test -q -p autogemm-repro --test verify
cargo test -q -p autogemm-repro --features faultinject --test verify

echo "== supervision soak (smoke length) =="
# Randomized watchdog-supervised calls under seeded fault plans: every
# call structured-error-or-correct, zero pool-buffer leaks, and the
# circuit breaker never stuck Open once the probes disarm. Every
# threaded call routes through the persistent worker pool, so this
# doubles as the pool soak. The full run (2000 iters) is the default
# when invoked without a count.
cargo run --release -p autogemm-bench --features faultinject --bin native_gemm -- --soak 400

echo "== panic policy (library code) =="
# The fallible API contract: no unwrap/expect in autogemm library code —
# internal invariants must carry a scoped #[allow] with a justification.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --no-deps -p autogemm --lib -- \
        -D warnings -D clippy::unwrap_used -D clippy::expect_used
else
    echo "clippy not installed; skipping (non-fatal)"
fi

echo "== native bench smoke (fallible-path overhead + input-aware dispatch) =="
# Asserts try_* is bit-identical to and not measurably slower than the
# classic drivers, loosely cross-checks BENCH_native_gemm.json, gates
# the input-aware engine path on Table V ResNet shapes (bit-identical
# to and never slower than the always-packed panel-cache driver beyond
# noise), and checks plan-cache determinism (repeat shape → cache hit,
# identical output).
cargo run --release -p autogemm-bench --bin native_gemm -- --smoke

echo "== worker-pool dispatch smoke =="
# Streams a Table V small shape through the persistent pool and the
# scoped-spawn baseline on the same plan: bit-identical results, pooled
# p50 never slower than scoped beyond noise, zero per-call OS thread
# creation and zero leaked pool workers.
cargo run --release -p autogemm-bench --bin pool_overhead -- --smoke

echo "== service overload smoke =="
# Paced offered-load sweep (0.5x/1x/2x of measured saturation) through
# the admission-controlled service: at 2x the overflow must come back as
# deterministic structured rejections with bounded p99 for admitted
# calls, and every load level must drain the queue, the in-flight gauge
# and the pool back to idle.
cargo run --release -p autogemm-bench --bin service_soak -- --smoke

echo "== microkernel bench smoke =="
cargo run --release -p autogemm-bench --bin microkernel -- --smoke

echo "== gemmtrace bench smoke =="
# Runs the traced shape sweep's cube subset through the engine front
# door, re-parses every emitted report through the GemmReport
# schema-version guard, and gates that metrics-off try_gemm latency
# stays within noise of metrics-on.
cargo run --release -p autogemm-bench --features telemetry --bin gemmtrace -- --smoke

echo "== bench artifact schema guard =="
# Re-parse every committed BENCH_*.json through the versioned-schema
# parser: embedded GemmReports must pass the lenient version guard,
# timeline artifacts must be well-formed Chrome trace events, and every
# artifact (including ones with no reports, e.g. BENCH_pool.json) must
# be valid JSON.
cargo run --release -p autogemm-bench --bin schema_guard

echo "== rustfmt =="
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "rustfmt not installed; skipping (non-fatal)"
fi

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping (non-fatal)"
fi

echo "CI gate passed."
