//! Reproduction harness for **autoGEMM** (SC'24): re-exports of every
//! workspace crate, used by the integration tests in `tests/` and the
//! runnable examples in `examples/`.
//!
//! See the repository README for the map of the system and DESIGN.md for
//! the paper-to-crate inventory.

pub use autogemm;
pub use autogemm_arch as arch;
pub use autogemm_baselines as baselines;
pub use autogemm_kernelgen as kernelgen;
pub use autogemm_perfmodel as perfmodel;
pub use autogemm_sim as sim;
pub use autogemm_tiling as tiling;
pub use autogemm_tuner as tuner;
pub use autogemm_workloads as workloads;
